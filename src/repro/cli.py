"""Command-line interface for the SAFE feature-engineering workflow.

The paper's deployment story is: learn Ψ offline, persist it, and serve
it (interpretably, in real time) next to any downstream model. The CLI
mirrors that lifecycle on CSV files:

* ``fit``        — learn Ψ from a labeled training CSV, write a JSON plan
* ``transform``  — apply a saved plan to a CSV, write the generated CSV
* ``serve``      — run a CSV of requests through the hardened serving loop
  (admission + coercion policy, per-request deadlines, circuit breakers,
  bounded queue with load shedding, optional mid-stream plan hot-swap)
* ``evaluate``   — compare original vs. plan features for a classifier
* ``inspect``    — print a saved plan's features (the interpretability view)
* ``lint``       — static analysis of the numerical kernels (AST lint)
* ``validate-plan`` — statically validate a saved plan without touching data

Usage::

    python -m repro fit --train train.csv --plan psi.json --method SAFE
    python -m repro transform --plan psi.json --input new.csv --output out.csv
    python -m repro serve psi.json --input requests.csv --output scored.csv \\
        --deadline-ms 50 --max-queue 256 --coerce reorder,cast,missing \\
        --report serving_report.json
    python -m repro evaluate --train train.csv --test test.csv --plan psi.json
    python -m repro inspect --plan psi.json
    python -m repro lint --json
    python -m repro validate-plan --plan psi.json

``serve`` exits 0 when every request was served clean, 1 when any
response was degraded/rejected/shed (the report names why), and 2 on
operational errors (missing plan, schema-hash mismatch, ...).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.pipeline import SAFE
from .core.transform import FeatureTransformer
from .exceptions import ReproError
from .experiments.runner import METHOD_ORDER, make_method
from .metrics import roc_auc_score
from .models import PAPER_CLASSIFIERS, make_classifier
from .tabular.dataset import Dataset
from .tabular.io import load_csv, save_csv


def _stream_dataset(args: argparse.Namespace):
    """Open the training CSV as a manifest-verified chunked dataset.

    The CSV converts once into memory-mapped ``.npy`` files plus an
    integrity manifest under a cache directory (inside the checkpoint
    directory when one is given, so a resumed ``fit --stream`` reuses
    the conversion and still verifies every chunk it reads).
    """
    import tempfile

    from .tabular.io import ChunkedDataset, csv_to_npy, manifest_path_for

    if args.checkpoint_dir is not None:
        cache = Path(args.checkpoint_dir) / "stream-cache"
    else:
        cache = Path(tempfile.mkdtemp(prefix="repro-stream-"))
    cache.mkdir(parents=True, exist_ok=True)
    x_path = cache / "X.npy"
    y_path = cache / "y.npy"
    if not (
        x_path.exists() and y_path.exists()
        and manifest_path_for(x_path).exists()
    ):
        csv_to_npy(
            args.train,
            x_path,
            y_path,
            label_column=args.label_column,
            chunk_rows=args.chunk_rows,
            manifest=True,
        )
    return ChunkedDataset.from_npy(
        x_path,
        y_path=y_path,
        chunk_rows=args.chunk_rows,
        manifest=True,
        on_chunk_error=args.on_chunk_error,
    )


def _cmd_fit(args: argparse.Namespace) -> int:
    method = make_method(
        args.method,
        gamma=args.gamma,
        seed=args.seed,
        n_iterations=args.iterations,
        max_output_features=args.max_features,
    )
    if args.stream:
        if not isinstance(method, SAFE):
            raise ReproError("--stream is supported for --method SAFE only")
        if args.valid:
            raise ReproError("--stream does not support a validation set")
        train = _stream_dataset(args)
        transformer = method.fit(
            train, checkpoint_dir=args.checkpoint_dir
        )
        report = method.runtime_report_
        if report.chunks_quarantined:
            print(
                f"quarantined {len(report.chunks_quarantined)} corrupt "
                "chunk(s); fit used the surviving rows",
                file=sys.stderr,
            )
    else:
        train = load_csv(args.train, label_column=args.label_column)
        valid = (
            load_csv(args.valid, label_column=args.label_column)
            if args.valid
            else None
        )
        if isinstance(method, SAFE):
            transformer = method.fit(
                train, valid, checkpoint_dir=args.checkpoint_dir
            )
        else:
            transformer = method.fit(train, valid)
    transformer.save(args.plan)
    print(f"fitted {args.method}: {transformer.n_output_features} features "
          f"-> {args.plan}")
    for name in transformer.feature_names[: args.show]:
        print(f"  {name}")
    return 0


def _cmd_transform(args: argparse.Namespace) -> int:
    transformer = FeatureTransformer.load(args.plan)
    data = load_csv(args.input, label_column=args.label_column)
    if data.names != transformer.original_names:
        # Column order may differ between exports; realign by name.
        data = data.select(list(transformer.original_names))
    out = transformer.transform(data, errors=args.errors)
    save_csv(out, args.output, label_column=args.label_column)
    print(f"transformed {out.n_rows} rows x {out.n_cols} features -> {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from .serving import CoercionPolicy, ServingSession

    session = ServingSession(
        args.plan,
        deadline_ms=args.deadline_ms,
        max_queue=args.max_queue,
        policy=CoercionPolicy.from_spec(args.coerce),
        breaker_threshold=args.breaker_threshold,
    )
    data = load_csv(args.input, label_column=args.label_column)
    # Requests go through admission as named records, so a reordered or
    # drifted export degrades per the coercion policy instead of binding
    # columns positionally.
    requests = [dict(zip(data.names, row)) for row in data.X]

    swap_at = len(requests) // 2 if args.swap_plan else len(requests)
    responses = session.serve(requests[:swap_at])
    if args.swap_plan:
        try:
            session.swap_plan(args.swap_plan)
            print(f"hot-swapped plan -> {args.swap_plan}")
        except ReproError as exc:
            print(f"hot-swap rolled back: {exc}", file=sys.stderr)
        responses += session.serve(requests[swap_at:])

    plan = session.plan
    k = plan.n_output_features
    out = np.full((len(responses), k), np.nan)
    for i, response in enumerate(responses):
        if response.ok:
            out[i] = response.values
    if args.output:
        save_csv(
            Dataset(X=out, names=plan._output_names()),
            args.output,
            label_column=args.label_column,
        )

    counts: "dict[str, int]" = {}
    for response in responses:
        counts[response.status] = counts.get(response.status, 0) + 1
    summary = session.report.summary()
    if args.report:
        from .utils import atomic_write

        with atomic_write(args.report) as fh:
            fh.write(json.dumps(summary, indent=2))
    print(
        f"served {len(responses)} requests: "
        + ", ".join(f"{counts.get(s, 0)} {s}" for s in
                    ("ok", "degraded", "rejected", "shed"))
        + (f" -> {args.output}" if args.output else "")
    )
    health = session.health()
    print(
        f"health: {health['status']} "
        f"(open breakers: {len(health['open_breakers'])}, "
        f"deadline hits: {summary['deadline_hits']}, "
        f"coerced: {summary['admitted_coerced']}, "
        f"swaps: {summary['swaps_completed']} ok / "
        f"{summary['swaps_rolled_back']} rolled back)"
    )
    clean = all(response.status == "ok" for response in responses)
    return 0 if clean else 1


def _cmd_evaluate(args: argparse.Namespace) -> int:
    train = load_csv(args.train, label_column=args.label_column)
    test = load_csv(args.test, label_column=args.label_column)
    rows = [("ORIG", train, test)]
    if args.plan:
        transformer = FeatureTransformer.load(args.plan)
        rows.append(("PLAN", transformer.transform(train), transformer.transform(test)))
    for label, tr, te in rows:
        clf = make_classifier(args.classifier)
        clf.fit(tr.X, tr.require_labels())
        auc = roc_auc_score(te.require_labels(), clf.predict_proba(te.X)[:, 1])
        print(f"{label}: {args.classifier.upper()} test AUC = {auc:.4f}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import render_findings, run_lint

    src_root = args.src or Path(__file__).resolve().parent
    repo_root = src_root.parent.parent  # src/repro -> repo checkout
    tests_root = args.tests
    if tests_root is None:
        candidate = repo_root / "tests"
        tests_root = candidate if candidate.is_dir() else None
    findings = run_lint(src_root, tests_root=tests_root, repo_root=repo_root)
    print(render_findings(findings, as_json=args.json))
    return 1 if findings else 0


def _cmd_validate_plan(args: argparse.Namespace) -> int:
    from .analysis import validate_plan

    report = validate_plan(args.plan)
    print(report.to_json() if args.json else report.render())
    return 0 if report.ok else 1


def _cmd_inspect(args: argparse.Namespace) -> int:
    transformer = FeatureTransformer.load(args.plan)
    print(transformer.describe())
    meta = transformer.metadata
    if meta:
        print("metadata:")
        for key, value in meta.items():
            print(f"  {key}: {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SAFE automatic feature engineering (ICDE 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fit = sub.add_parser("fit", help="learn a feature-generation plan")
    fit.add_argument("--train", required=True, type=Path)
    fit.add_argument("--valid", type=Path, default=None)
    fit.add_argument("--plan", required=True, type=Path)
    fit.add_argument("--method", default="SAFE",
                     choices=list(METHOD_ORDER) + ["AUTO"])
    fit.add_argument("--gamma", type=int, default=50)
    fit.add_argument("--iterations", type=int, default=1)
    fit.add_argument("--max-features", type=int, default=None)
    fit.add_argument("--label-column", default="label")
    fit.add_argument("--seed", type=int, default=0)
    fit.add_argument("--checkpoint-dir", type=Path, default=None,
                     help="persist per-iteration checkpoints here (SAFE only); "
                          "a restarted fit pointed at the same directory "
                          "resumes from the last completed iteration (with "
                          "--stream, also mid-iteration via sufficient-"
                          "statistic snapshots)")
    fit.add_argument("--stream", action="store_true",
                     help="fit out of core: convert the CSV to memory-mapped "
                          "chunks with an integrity manifest and stream the "
                          "fit (SAFE only)")
    fit.add_argument("--chunk-rows", type=int, default=65536,
                     help="rows per streamed chunk (with --stream)")
    fit.add_argument("--on-chunk-error", default="raise",
                     choices=["raise", "quarantine"],
                     help="what to do when a chunk fails its integrity "
                          "manifest: abort the fit, or exclude the chunk "
                          "deterministically and record it")
    fit.add_argument("--show", type=int, default=10,
                     help="number of feature formulas to print")
    fit.set_defaults(func=_cmd_fit)

    transform = sub.add_parser("transform", help="apply a saved plan to a CSV")
    transform.add_argument("--plan", required=True, type=Path)
    transform.add_argument("--input", required=True, type=Path)
    transform.add_argument("--output", required=True, type=Path)
    transform.add_argument("--label-column", default="label")
    transform.add_argument("--errors", default="raise",
                           choices=["raise", "null"],
                           help="'null' serves degraded: a failing expression "
                                "yields a NaN column instead of aborting")
    transform.set_defaults(func=_cmd_transform)

    serve = sub.add_parser(
        "serve",
        help="serve a CSV of requests through the hardened serving loop "
             "(exit 1 when any response degraded)",
    )
    serve.add_argument("plan", type=Path,
                       help="the fitted plan JSON to serve")
    serve.add_argument("--input", required=True, type=Path,
                       help="CSV of requests (one row per request)")
    serve.add_argument("--output", type=Path, default=None,
                       help="CSV of served feature rows (NaN row for "
                            "rejected/shed requests)")
    serve.add_argument("--label-column", default="label")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request evaluation budget in milliseconds "
                            "(monotonic clock; default unbounded)")
    serve.add_argument("--max-queue", type=int, default=1024,
                       help="request queue bound; overflow sheds the oldest "
                            "request with a flagged response")
    serve.add_argument("--coerce", default="reorder,cast",
                       help="admission coercion policy: none | all | comma "
                            "list of reorder,cast,missing,extra")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive operator failures that trip an "
                            "expression's circuit breaker open")
    serve.add_argument("--swap-plan", type=Path, default=None,
                       help="hot-swap to this plan halfway through the "
                            "input (fingerprint-verified, self-tested, "
                            "rolled back on failure)")
    serve.add_argument("--report", type=Path, default=None,
                       help="write the ServingReport summary JSON here")
    serve.set_defaults(func=_cmd_serve)

    evaluate = sub.add_parser("evaluate", help="AUC of original vs plan features")
    evaluate.add_argument("--train", required=True, type=Path)
    evaluate.add_argument("--test", required=True, type=Path)
    evaluate.add_argument("--plan", type=Path, default=None)
    evaluate.add_argument("--classifier", default="xgb",
                          choices=list(PAPER_CLASSIFIERS))
    evaluate.add_argument("--label-column", default="label")
    evaluate.set_defaults(func=_cmd_evaluate)

    inspect = sub.add_parser("inspect", help="print a saved plan")
    inspect.add_argument("--plan", required=True, type=Path)
    inspect.set_defaults(func=_cmd_inspect)

    lint = sub.add_parser(
        "lint", help="static analysis of the numerical kernels (exit 1 on findings)"
    )
    lint.add_argument("--src", type=Path, default=None,
                      help="source root to lint (default: the installed repro package)")
    lint.add_argument("--tests", type=Path, default=None,
                      help="test root for the kernel-parity cross-check "
                           "(default: <repo>/tests when present)")
    lint.add_argument("--json", action="store_true",
                      help="emit findings as a JSON array")
    lint.set_defaults(func=_cmd_lint)

    validate_plan = sub.add_parser(
        "validate-plan",
        help="statically validate a saved plan (exit 1 when rejected)",
    )
    validate_plan.add_argument("--plan", required=True, type=Path)
    validate_plan.add_argument("--json", action="store_true",
                               help="emit the report as JSON")
    validate_plan.set_defaults(func=_cmd_validate_plan)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): exit quietly.
        return 0
    except ReproError as exc:
        # Expected, user-actionable failures (bad file, schema mismatch,
        # invalid configuration): one line on stderr, exit 2 — distinct
        # from exit 1, which subcommands use for "ran fine, found
        # problems" (lint findings, rejected plans).
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
