"""Shared small utilities: RNG handling, validation, timing.

These helpers keep the rest of the codebase free of repeated boilerplate for
random-state normalization and array validation, mirroring the conventions
of mainstream ML libraries so the public API feels familiar.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from .exceptions import DataError

#: Union of things accepted wherever a random state is expected.
RandomStateLike = "int | np.random.Generator | None"


def check_random_state(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh nondeterministic generator), an ``int`` seed, or
    an existing generator (returned as-is, so state is shared with the
    caller).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise DataError(f"cannot interpret {seed!r} as a random state")


def as_float_matrix(
    X: "np.ndarray | list", name: str = "X", contiguous: bool = True
) -> np.ndarray:
    """Validate and convert ``X`` to a 2-D float64 matrix.

    ``contiguous=True`` (the default) additionally forces C order, which
    copies Fortran-ordered input; pass ``False`` when the caller is
    layout-agnostic (e.g. in-place sanitation of a freshly allocated
    column-major block) to keep the input's layout and avoid that copy.
    """
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise DataError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    if arr.shape[0] == 0:
        raise DataError(f"{name} has zero rows")
    if arr.shape[1] == 0:
        raise DataError(f"{name} has zero columns")
    return np.ascontiguousarray(arr) if contiguous else arr


def as_label_vector(y: "np.ndarray | list", n_rows: "int | None" = None) -> np.ndarray:
    """Validate and convert ``y`` to a 1-D float64 vector of 0/1 labels."""
    arr = np.asarray(y, dtype=np.float64).ravel()
    if arr.size == 0:
        raise DataError("y is empty")
    if n_rows is not None and arr.size != n_rows:
        raise DataError(f"y has {arr.size} rows but X has {n_rows}")
    uniq = np.unique(arr)
    if not np.isin(uniq, (0.0, 1.0)).all():
        raise DataError(f"labels must be binary 0/1, got values {uniq[:10]}")
    return arr


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def softmax(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = z - z.max(axis=axis, keepdims=True)
    ez = np.exp(shifted)
    return ez / ez.sum(axis=axis, keepdims=True)


@contextmanager
def atomic_path(path: "str | Path", suffix: str = "") -> "Iterator[Path]":
    """Yield a hidden temp path beside ``path``; rename into place on success.

    The durable-artifact write pattern: the caller writes the *complete*
    artifact to the yielded temp path, and only an exception-free exit
    publishes it via ``os.replace`` — an atomic rename within the target
    directory, so readers observe either the previous artifact or the
    new one, never a torn mix. On failure the temp file is removed and
    the previous artifact (if any) is untouched.

    ``suffix`` extends the temp name for writers that are picky about
    extensions (``np.save`` appends ``.npy`` to names without it).
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp{suffix}")
    try:
        yield tmp
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


@contextmanager
def atomic_write(
    path: "str | Path",
    mode: str = "w",
    newline: "str | None" = None,
    encoding: "str | None" = None,
) -> "Iterator[IO]":
    """Open a file handle whose contents only become ``path`` on success.

    Text/bytes counterpart of :func:`atomic_path`: the handle writes to
    a hidden temp file which is flushed, ``fsync``'d, and atomically
    renamed over ``path`` when the block exits cleanly. A crash (or an
    exception) mid-write leaves the previous file intact.
    """
    if "r" in mode or "+" in mode or "a" in mode:
        raise DataError(f"atomic_write needs a fresh write mode, got {mode!r}")
    with atomic_path(path) as tmp:
        with open(tmp, mode, newline=newline, encoding=encoding) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())


class Timer:
    """Tiny wall-clock timer; ``Timer()`` starts immediately.

    >>> t = Timer()
    >>> elapsed = t.elapsed()  # seconds since construction
    """

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def restart(self) -> float:
        """Return elapsed seconds and reset the clock."""
        now = time.perf_counter()
        out = now - self._start
        self._start = now
        return out


@contextmanager
def timed() -> Iterator[Timer]:
    """Context manager yielding a :class:`Timer` for the enclosed block."""
    yield Timer()
