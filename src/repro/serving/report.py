"""Serving health report: what the request path degraded, shed, or refused.

The serve-side sibling of :class:`~repro.runtime.RuntimeReport`. A
hardened serving loop is only trustworthy if every departure from the
clean path is *accounted for*: a NaN column, a shed request, a tripped
breaker, or a rolled-back hot-swap that goes unrecorded looks exactly
like healthy traffic from the outside. :class:`ServingReport` is the
single ledger a :class:`~repro.serving.ServingSession` writes those
departures to; operators poll :meth:`summary` next to
``ServingSession.health``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ServingReport:
    """Aggregated degradation bookkeeping for one serving session."""

    #: Requests that entered admission (shed requests never get here).
    requests_total: int = 0
    #: Admission outcomes (mirrors the validator's per-category counters).
    admitted_exact: int = 0
    admitted_coerced: int = 0
    rejected: int = 0
    #: Requests dropped by the bounded queue's shed-oldest policy.
    shed: int = 0
    #: Requests whose deadline budget expired mid-evaluation.
    deadline_hits: int = 0
    #: Breaker state transitions into ``open`` (trips), and requests that
    #: skipped an expression because its breaker was open.
    breaker_trips: int = 0
    breaker_short_circuits: int = 0
    #: Expression columns served as NaN after an operator fault.
    nulled_columns: int = 0
    #: Hot-swap outcomes.
    swaps_completed: int = 0
    swaps_rolled_back: int = 0

    #: Coercion notes applied at admission, counted by kind
    #: (e.g. ``{"reordered": 3, "missing:age": 1}``).
    coercions: "dict[str, int]" = field(default_factory=dict)
    #: Expression keys whose breaker tripped, in trip order.
    tripped_expressions: "list[str]" = field(default_factory=list)
    #: Reasons for every refused or rolled-back hot-swap.
    swap_failures: "list[str]" = field(default_factory=list)

    # ------------------------------------------------------------------
    def record_coercions(self, notes) -> None:
        for note in notes:
            self.coercions[note] = self.coercions.get(note, 0) + 1

    def record_trip(self, key: str) -> None:
        self.breaker_trips += 1
        self.tripped_expressions.append(key)

    def record_swap_failure(self, reason: str) -> None:
        self.swaps_rolled_back += 1
        self.swap_failures.append(reason)

    @property
    def degraded_responses(self) -> int:
        """Upper-bound marker for "anything non-clean happened"."""
        return (
            self.rejected
            + self.shed
            + self.deadline_hits
            + self.breaker_short_circuits
            + self.nulled_columns
        )

    def summary(self) -> dict:
        """JSON-able digest (stable keys, no objects)."""
        return {
            "requests_total": self.requests_total,
            "admitted_exact": self.admitted_exact,
            "admitted_coerced": self.admitted_coerced,
            "rejected": self.rejected,
            "shed": self.shed,
            "deadline_hits": self.deadline_hits,
            "breaker_trips": self.breaker_trips,
            "breaker_short_circuits": self.breaker_short_circuits,
            "nulled_columns": self.nulled_columns,
            "swaps_completed": self.swaps_completed,
            "swaps_rolled_back": self.swaps_rolled_back,
            "coercions": dict(self.coercions),
            "tripped_expressions": list(self.tripped_expressions),
            "swap_failures": list(self.swap_failures),
        }
