"""The hardened serving loop: admission → deadline-bounded evaluation →
flagged degradation, plus atomic hot-swap of the served plan.

:class:`ServingSession` is the request path the paper's real-time
scoring requirement lands on. It wraps a fitted
:class:`~repro.core.FeatureTransformer` with the serve-side resilience
the raw ``transform`` call lacks:

* every request passes **admission** (:mod:`repro.serving.validator`):
  exact requests take the bit-identical fast path, coercible drift is
  repaired and recorded, rejected drift gets a typed refusal — never
  silent positional garbage;
* evaluation is **step-wise per expression** with the request's
  monotonic-clock deadline checked between steps — a slow operator costs
  the columns after it (served NaN, flagged), not the whole process;
* each expression sits behind a **circuit breaker**
  (:mod:`repro.serving.breaker`): consecutive operator failures trip it
  open and the expression is served NaN without evaluation until a
  cooldown probe succeeds, so one pathological expression cannot tax
  every request while the rest of Ψ stays live;
* overload is **shed, not absorbed**: requests flow through a bounded
  queue whose overflow drops the oldest request with a flagged ``shed``
  response (:mod:`repro.serving.queue`);
* the plan is **hot-swappable**: :meth:`swap_plan` verifies the
  candidate's fingerprints against the live schema, self-tests it on a
  probe row, and installs it atomically under a lock — any failure rolls
  back to the prior plan and is recorded.

Fault-free invariant (enforced by the chaos suite): with no failpoints
armed, no deadline, and admission-exact input, a session's output is
bit-identical to ``FeatureTransformer.transform`` on the same rows.

All timing uses ``time.monotonic()`` — wall clock (``time.time``) jumps
under NTP corrections, which would fire deadlines spuriously; the
``wallclock-deadline`` lint rule enforces this repo-wide.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.transform import FeatureTransformer
from ..exceptions import (
    ConfigurationError,
    InjectedFault,
    PlanSwapError,
    ReproError,
)
from ..operators.engine import EvalCache
from ..runtime.failpoints import failpoint
from .breaker import CLOSED, CircuitBreaker
from .queue import BoundedRequestQueue
from .report import ServingReport
from .validator import COERCED, EXACT, REJECTED, CoercionPolicy, RequestValidator

#: Response statuses.
OK = "ok"
DEGRADED = "degraded"
REJECTED_STATUS = "rejected"
SHED = "shed"


@dataclass(frozen=True)
class ServingResponse:
    """One answered request: values plus every degradation flag."""

    request_id: int
    #: ``ok`` | ``degraded`` | ``rejected`` | ``shed``.
    status: str
    #: ``(k,)`` for single-record requests, ``(n, k)`` for batches;
    #: None for rejected/shed requests.
    values: "np.ndarray | None" = None
    #: Admission category (``exact``/``coerced``; None when never admitted).
    admission: "str | None" = None
    #: Repairs applied at admission.
    coercions: "tuple[str, ...]" = ()
    #: Expression keys served as NaN (operator fault or open breaker).
    nulled: "tuple[str, ...]" = ()
    #: Whether the deadline budget expired mid-evaluation.
    deadline_hit: bool = False
    #: Refusal message for ``rejected``/``shed`` responses.
    error: "str | None" = None

    @property
    def ok(self) -> bool:
        """Whether the response carries servable values."""
        return self.status in (OK, DEGRADED)


@dataclass(frozen=True)
class _QueuedRequest:
    request_id: int
    payload: object


class ServingSession:
    """Serve one plan with admission, deadlines, breakers, and hot-swap.

    Parameters
    ----------
    plan:
        The fitted plan, or a path to a saved plan JSON.
    deadline_ms:
        Per-request evaluation budget in milliseconds (None = unbounded),
        measured on the monotonic clock and checked between
        expression-evaluation steps.
    max_queue:
        Bound of the request queue; overflow sheds the oldest request.
    policy:
        Admission :class:`CoercionPolicy` (default: reorder + cast
        allowed, missing/extra columns rejected).
    breaker_threshold / breaker_cooldown:
        Consecutive failures that trip an expression's breaker, and the
        seconds an open breaker waits before a half-open probe.
    clock / sleep:
        Injectable monotonic clock and sleeper, for deterministic tests.

    The serve loop (``serve``/``serve_one``) is single-consumer;
    :meth:`swap_plan` and :meth:`health` may be called concurrently from
    other threads — plan installation happens under the session lock.
    """

    def __init__(
        self,
        plan: "FeatureTransformer | str | Path",
        *,
        deadline_ms: "float | None" = None,
        max_queue: int = 1024,
        policy: "CoercionPolicy | None" = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if deadline_ms is not None and deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be positive, got {deadline_ms}"
            )
        if not isinstance(plan, FeatureTransformer):
            plan = FeatureTransformer.load(plan)
        self.deadline_ms = deadline_ms
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.RLock()
        self._policy = policy if policy is not None else CoercionPolicy()
        self.report = ServingReport()
        self._queue = BoundedRequestQueue(max_queue)
        self._ids = itertools.count()
        self._probe_row: "np.ndarray | None" = None
        self._install(plan)

    # ------------------------------------------------------------------
    def _install(self, plan: FeatureTransformer) -> None:
        """Bind plan + validator + fresh breakers (callers hold the lock
        or are the constructor)."""
        with self._lock:
            self._plan = plan
            self._validator = RequestValidator.for_plan(plan, policy=self._policy)
            self._breakers = {
                expr.key: CircuitBreaker(
                    expr.key,
                    failure_threshold=self.breaker_threshold,
                    cooldown=self.breaker_cooldown,
                )
                for expr in plan.expressions
            }

    @property
    def plan(self) -> FeatureTransformer:
        with self._lock:
            return self._plan

    @property
    def validator(self) -> RequestValidator:
        with self._lock:
            return self._validator

    def health(self) -> dict:
        """Liveness/readiness view (JSON-able, stable keys)."""
        with self._lock:
            plan = self._plan
            open_breakers = sorted(
                key for key, b in self._breakers.items() if b.state != CLOSED
            )
        meta = plan.metadata if isinstance(plan.metadata, dict) else {}
        return {
            "ready": True,
            "status": DEGRADED if open_breakers else OK,
            "queue_depth": self._queue.depth,
            "open_breakers": open_breakers,
            "n_features": plan.n_output_features,
            "schema_hash": meta.get("schema_hash"),
            "config_hash": meta.get("config_hash"),
            "requests_total": self.report.requests_total,
        }

    # ------------------------------------------------------------------
    # The serve loop
    # ------------------------------------------------------------------
    def serve(self, payloads) -> "list[ServingResponse]":
        """Run an iterable of requests through the bounded queue.

        Responses come back in request order; shed requests are answered
        with flagged ``shed`` responses rather than silently dropped.
        """
        responses: "dict[int, ServingResponse]" = {}
        for payload in payloads:
            rid = next(self._ids)
            shed = self._queue.offer(_QueuedRequest(rid, payload))
            if shed is not None:
                self.report.shed += 1
                responses[shed.request_id] = ServingResponse(
                    shed.request_id,
                    SHED,
                    error="shed under overload (bounded queue, shed-oldest)",
                )
        while True:
            item = self._queue.pop()
            if item is None:
                break
            responses[item.request_id] = self._process(
                item.request_id, item.payload
            )
        return [responses[rid] for rid in sorted(responses)]

    def serve_one(self, payload) -> ServingResponse:
        """Serve a single request (record dict, 1-D row, batch, Dataset)."""
        return self.serve([payload])[0]

    # ------------------------------------------------------------------
    def _process(self, rid: int, payload) -> ServingResponse:
        with self._lock:
            plan = self._plan
            validator = self._validator
            breakers = self._breakers
        self.report.requests_total += 1

        admission = validator.admit(payload)
        if admission.category == REJECTED:
            self.report.rejected += 1
            return ServingResponse(
                rid, REJECTED_STATUS, error=str(admission.error)
            )
        if admission.category == EXACT:
            self.report.admitted_exact += 1
        else:
            self.report.admitted_coerced += 1
            self.report.record_coercions(admission.coercions)

        X = admission.X
        self._probe_row = X[:1].copy()  # last admitted row = hot-swap probe
        deadline = None
        if self.deadline_ms is not None:
            deadline = self._clock() + self.deadline_ms / 1000.0

        expressions = plan.expressions
        out = np.empty(
            (X.shape[0], len(expressions)), dtype=np.float64, order="F"
        )
        cache = EvalCache(X)
        nulled: "list[str]" = []
        deadline_hit = False
        for j, expr in enumerate(expressions):
            now = self._clock()
            if deadline is not None and now >= deadline:
                # Budget exhausted: the remaining columns are served NaN
                # and the whole tail is flagged, in one recorded hit.
                out[:, j:] = np.nan
                nulled.extend(e.key for e in expressions[j:])
                deadline_hit = True
                self.report.deadline_hits += 1
                break
            breaker = breakers.get(expr.key)
            if breaker is not None and not breaker.allow(now):
                out[:, j] = np.nan
                nulled.append(expr.key)
                self.report.breaker_short_circuits += 1
                continue
            try:
                try:
                    # Chaos hook: an armed slow operator burns the whole
                    # remaining deadline budget, then evaluates normally —
                    # the *next* step's deadline check degrades the tail.
                    failpoint("serve.slow_operator")
                except InjectedFault:
                    self._stall_past(deadline)
                # Chaos hook: a hard operator fault at this step.
                failpoint("serve.operator")
                column = np.asarray(cache.column(expr), dtype=np.float64)
            except Exception:
                # Degraded serving: the NaN column, the breaker failure,
                # and the report entry *are* the record of this fault.
                out[:, j] = np.nan
                nulled.append(expr.key)
                self.report.nulled_columns += 1
                if breaker is not None and breaker.record_failure(self._clock()):
                    self.report.record_trip(expr.key)
            else:
                out[:, j] = column
                if breaker is not None:
                    breaker.record_success()

        status = DEGRADED if (nulled or deadline_hit) else OK
        values = out[0] if admission.single else out
        return ServingResponse(
            rid,
            status,
            values=values,
            admission=admission.category,
            coercions=admission.coercions,
            nulled=tuple(nulled),
            deadline_hit=deadline_hit,
        )

    def _stall_past(self, deadline: "float | None") -> None:
        """Burn the remaining deadline budget (the simulated slow operator).

        With no deadline configured there is no budget to burn — the
        session has chosen unbounded latency, so a slow operator is not a
        fault and the stall is a no-op.
        """
        if deadline is None:
            return
        while self._clock() < deadline:
            self._sleep(max(deadline - self._clock(), 0.0) + 1e-4)

    # ------------------------------------------------------------------
    # Hot-swap
    # ------------------------------------------------------------------
    def swap_plan(
        self, candidate: "FeatureTransformer | str | Path"
    ) -> FeatureTransformer:
        """Atomically replace the served plan, or roll back and raise.

        Protocol (all under the session lock, so requests see either the
        old plan or the fully installed new one):

        1. **Load** — a path is loaded through
           :meth:`FeatureTransformer.load`, so corruption and
           forward-version faults surface as typed errors;
        2. **Fingerprint gate** — the candidate must expect exactly the
           live input schema (``original_names`` / ``schema_hash``);
           serving traffic does not change shape because the plan did;
        3. **Self-test** — the candidate transforms a probe row (the last
           admitted row, or zeros before any traffic) with
           ``errors="raise"``; any fault vetoes the swap;
        4. **Install or roll back** — only a candidate that passed all
           gates is installed (with fresh breakers); every failure leaves
           the prior plan serving, records the reason on the report, and
           raises :class:`~repro.exceptions.PlanSwapError`.
        """
        with self._lock:
            current = self._plan
            if not isinstance(candidate, FeatureTransformer):
                try:
                    candidate = FeatureTransformer.load(candidate)
                except ReproError as exc:
                    reason = f"load failed: {type(exc).__name__}: {exc}"
                    self.report.record_swap_failure(reason)
                    raise PlanSwapError(
                        f"hot-swap refused ({reason}); keeping the current plan"
                    ) from exc
            if candidate.original_names != current.original_names:
                reason = (
                    "schema fingerprint mismatch: candidate expects "
                    f"{len(candidate.original_names)} columns "
                    f"{candidate.original_names[:3]}..., live schema has "
                    f"{len(current.original_names)}"
                )
                self.report.record_swap_failure(reason)
                raise PlanSwapError(
                    f"hot-swap refused ({reason}); keeping the current plan"
                )
            probe = self._probe_row
            if probe is None:
                probe = np.zeros((1, len(current.original_names)))
            try:
                # Chaos hook: a candidate that loads cleanly but cannot
                # actually serve must be caught here, not by live traffic.
                failpoint("serve.bad_swap_plan")
                candidate.transform_matrix(probe, errors="raise")
            except Exception as exc:
                reason = f"self-test failed: {type(exc).__name__}: {exc}"
                self.report.record_swap_failure(reason)
                raise PlanSwapError(
                    f"hot-swap rolled back ({reason}); keeping the current plan"
                ) from exc
            self._install(candidate)
            self.report.swaps_completed += 1
            return candidate
