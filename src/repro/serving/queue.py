"""Bounded request queue with explicit shed-oldest overload policy.

Under overload a serving process has exactly three options: queue without
bound (and die by memory), block the producer (and spread the stall
upstream), or shed load *visibly*. This queue sheds: when a new request
arrives at a full queue, the **oldest** queued request is dropped and
returned to the caller so it can be answered with a flagged ``shed``
response and counted on the :class:`~repro.serving.ServingReport`.
Shed-oldest (rather than rejecting the newcomer) keeps the queue biased
toward fresh requests — under real-time scoring an old request's caller
has usually timed out already, so evaluating it would waste the budget
the new request still has.
"""

from __future__ import annotations

from collections import deque

from ..exceptions import ConfigurationError


class BoundedRequestQueue:
    """FIFO of at most ``max_depth`` items; overflow sheds the oldest."""

    def __init__(self, max_depth: int) -> None:
        if max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._items: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    def offer(self, item):
        """Enqueue ``item``; returns the shed (oldest) item, or None."""
        shed = None
        if len(self._items) >= self.max_depth:
            shed = self._items.popleft()
        self._items.append(item)
        return shed

    def pop(self):
        """Dequeue the oldest surviving item, or None when empty."""
        if not self._items:
            return None
        return self._items.popleft()
