"""Hardened serving runtime for fitted plans.

The serve-side counterpart of :mod:`repro.runtime` (which hardens fit):
everything between "a request arrived" and "a feature row left" lives
here, so that when the compiled serving engine lands it drops into an
already-resilient request path.

* :mod:`~repro.serving.validator` — admission control: every request is
  classified ``exact`` / ``coerced`` / ``rejected`` against the plan's
  fit-time schema under a :class:`CoercionPolicy`;
* :mod:`~repro.serving.breaker` — per-expression circuit breakers
  (closed → open → half-open) over the ``errors="null"`` degradation
  path;
* :mod:`~repro.serving.queue` — bounded request queue with explicit
  shed-oldest overload behavior;
* :mod:`~repro.serving.session` — :class:`ServingSession`: the
  deadline-bounded serve loop, health view, and fingerprint-verified
  atomic plan hot-swap with self-test and rollback;
* :mod:`~repro.serving.report` — :class:`ServingReport`, the ledger
  every degradation is recorded on.

Exposed on the CLI as ``python -m repro serve``.
"""

from .breaker import CircuitBreaker
from .queue import BoundedRequestQueue
from .report import ServingReport
from .session import ServingResponse, ServingSession
from .validator import Admission, CoercionPolicy, RequestValidator

__all__ = [
    "Admission",
    "BoundedRequestQueue",
    "CircuitBreaker",
    "CoercionPolicy",
    "RequestValidator",
    "ServingReport",
    "ServingResponse",
    "ServingSession",
]
