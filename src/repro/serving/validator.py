"""Admission control: classify incoming requests against the plan schema.

Production traffic drifts: an upstream team renames a column, reorders a
CSV export, starts sending strings, or drops a field. The worst outcome
is *silent garbage* — positionally binding drifted columns to the plan's
expressions and serving confidently wrong features. Admission makes the
outcome explicit instead. Every request is classified as

* ``exact``    — matches the fit-time schema as-is (the bit-identical
  fast path);
* ``coerced``  — repairable under the active :class:`CoercionPolicy`
  (columns reordered by name, values cast to float, missing columns
  filled with NaN, extra columns dropped), with each repair recorded;
* ``rejected`` — drift the policy does not cover; the request is refused
  with a typed :class:`~repro.exceptions.AdmissionError` naming exactly
  what drifted, and counted.

The validator is built from a plan's ``original_names`` +
``schema_hash`` metadata (see :meth:`RequestValidator.for_plan`), so the
contract it enforces is the one the plan was fitted under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.transform import FeatureTransformer
from ..exceptions import AdmissionError, ConfigurationError
from ..runtime.checkpoint import schema_fingerprint
from ..runtime.failpoints import failpoint
from ..tabular.dataset import Dataset

#: Admission categories.
EXACT = "exact"
COERCED = "coerced"
REJECTED = "rejected"

_POLICY_TOKENS = ("reorder", "cast", "missing", "extra")


@dataclass(frozen=True)
class CoercionPolicy:
    """Which schema repairs admission may apply silently (but recorded).

    ``missing`` and ``extra`` are tri-state by string so the config reads
    like the behavior: ``missing="nan"`` fills absent columns with NaN,
    ``missing="reject"`` refuses them; ``extra="drop"`` ignores unknown
    columns, ``extra="reject"`` refuses them.
    """

    reorder: bool = True
    cast: bool = True
    missing: str = "reject"
    extra: str = "reject"

    def __post_init__(self) -> None:
        if self.missing not in ("nan", "reject"):
            raise ConfigurationError(
                f"missing policy must be 'nan' or 'reject', got {self.missing!r}"
            )
        if self.extra not in ("drop", "reject"):
            raise ConfigurationError(
                f"extra policy must be 'drop' or 'reject', got {self.extra!r}"
            )

    @classmethod
    def from_spec(cls, spec: str) -> "CoercionPolicy":
        """Parse a CLI ``--coerce`` spec.

        ``"none"`` allows nothing, ``"all"`` allows everything, and a
        comma list of ``reorder``/``cast``/``missing``/``extra`` enables
        exactly those repairs (``missing`` implies fill-with-NaN,
        ``extra`` implies drop).
        """
        spec = spec.strip().lower()
        if spec == "none":
            return cls(reorder=False, cast=False, missing="reject", extra="reject")
        if spec == "all":
            return cls(reorder=True, cast=True, missing="nan", extra="drop")
        enabled = set()
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if token not in _POLICY_TOKENS:
                raise ConfigurationError(
                    f"unknown coercion {token!r}; expected none, all, or a "
                    f"comma list of {_POLICY_TOKENS}"
                )
            enabled.add(token)
        return cls(
            reorder="reorder" in enabled,
            cast="cast" in enabled,
            missing="nan" if "missing" in enabled else "reject",
            extra="drop" if "extra" in enabled else "reject",
        )


@dataclass(frozen=True)
class Admission:
    """One classified request: category, repaired matrix, and notes."""

    category: str
    #: Float64 ``(n, width)`` matrix in plan column order (None if rejected).
    X: "np.ndarray | None"
    #: Whether the request was a single record (1-D / mapping).
    single: bool = False
    #: Human-readable repairs applied (``"reordered"``, ``"missing:age"``...).
    coercions: "tuple[str, ...]" = ()
    #: The typed refusal, for ``rejected`` admissions.
    error: "AdmissionError | None" = None


class RequestValidator:
    """Classifies requests against one fitted schema; counts by category."""

    def __init__(
        self,
        names: "tuple[str, ...]",
        schema_hash: "str | None" = None,
        policy: "CoercionPolicy | None" = None,
    ) -> None:
        self.names = tuple(names)
        self.policy = policy if policy is not None else CoercionPolicy()
        expected = schema_fingerprint(self.names)
        if schema_hash is not None and schema_hash != expected:
            raise AdmissionError(
                "schema_hash does not match the plan's original_names; "
                "refusing to build an admission contract from a tampered plan"
            )
        self.schema_hash = expected
        self.counters = {EXACT: 0, COERCED: 0, REJECTED: 0}
        self._index = {name: i for i, name in enumerate(self.names)}

    @classmethod
    def for_plan(
        cls, plan: FeatureTransformer, policy: "CoercionPolicy | None" = None
    ) -> "RequestValidator":
        stored = None
        if isinstance(plan.metadata, dict):
            stored = plan.metadata.get("schema_hash")
        return cls(plan.original_names, schema_hash=stored, policy=policy)

    # ------------------------------------------------------------------
    def admit(self, request) -> Admission:
        """Classify one request; never raises for drifted *data* (the
        refusal rides on the returned :class:`Admission`)."""
        try:
            # Chaos hook: an injected admission fault must surface as a
            # counted rejection, not a crashed serve loop.
            failpoint("serve.admit")
            admission = self._classify(request)
        except AdmissionError as exc:
            admission = Admission(REJECTED, None, error=exc)
        except Exception as exc:
            admission = Admission(
                REJECTED,
                None,
                error=AdmissionError(
                    f"admission failed: {type(exc).__name__}: {exc}"
                ),
            )
        self.counters[admission.category] += 1
        return admission

    # ------------------------------------------------------------------
    def _classify(self, request) -> Admission:
        if isinstance(request, Dataset):
            return self._classify_named(request.names, request.X, single=False)
        if isinstance(request, Mapping):
            names = tuple(str(k) for k in request.keys())
            row = [request[k] for k in request.keys()]
            try:
                # All-numeric records keep a numeric dtype (the exact
                # path); mixed/typed payloads fall back to object and go
                # through the cast policy.
                values = np.asarray(row)
            except Exception:
                values = np.asarray(row, dtype=object)
            if values.dtype.kind not in "bifu":
                values = np.asarray(row, dtype=object)
            return self._classify_named(
                names, values.reshape(1, -1), single=True
            )
        return self._classify_positional(request)

    def _classify_positional(self, request) -> Admission:
        arr = np.asarray(request)
        single = arr.ndim == 1
        if single:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2:
            raise AdmissionError(
                f"request must be a record or a 2-D batch, got ndim={arr.ndim}"
            )
        if arr.shape[1] != len(self.names):
            raise AdmissionError(
                f"request has {arr.shape[1]} columns, plan expects "
                f"{len(self.names)}; positional input cannot be realigned — "
                "send named columns to allow coercion"
            )
        numeric = arr.dtype == bool or np.issubdtype(arr.dtype, np.number)
        X, cast_note = self._cast(arr, numeric_is_exact=numeric)
        notes = (cast_note,) if cast_note else ()
        category = COERCED if notes else EXACT
        return Admission(category, X, single=single, coercions=notes)

    def _classify_named(
        self, names: "tuple[str, ...]", matrix: np.ndarray, single: bool
    ) -> Admission:
        matrix = np.asarray(matrix)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
            single = True
        if matrix.shape[1] != len(names):
            raise AdmissionError(
                f"request carries {len(names)} names for {matrix.shape[1]} columns"
            )
        if len(set(names)) != len(names):
            raise AdmissionError("request has duplicate column names")

        notes: "list[str]" = []
        if names != self.names:
            known = set(self.names)
            extra = [n for n in names if n not in known]
            missing = [n for n in self.names if n not in set(names)]
            if extra:
                if self.policy.extra != "drop":
                    raise AdmissionError(
                        f"unknown columns {extra[:5]} (policy forbids "
                        "dropping extra columns)"
                    )
                notes.extend(f"extra:{n}" for n in extra)
            if missing:
                if self.policy.missing != "nan":
                    raise AdmissionError(
                        f"missing columns {missing[:5]} (policy forbids "
                        "filling missing columns with NaN)"
                    )
                notes.extend(f"missing:{n}" for n in missing)
            present = [n for n in names if n in known]
            schema_order = [n for n in self.names if n in set(present)]
            if present != schema_order:
                if not self.policy.reorder:
                    raise AdmissionError(
                        "columns are out of schema order (policy forbids "
                        "reordering by name)"
                    )
                notes.append("reordered")

            src = {n: j for j, n in enumerate(names)}
            out = np.empty((matrix.shape[0], len(self.names)), dtype=object)
            out[:] = np.nan
            for i, name in enumerate(self.names):
                j = src.get(name)
                if j is not None:
                    out[:, i] = matrix[:, j]
            matrix = out

        numeric = matrix.dtype == bool or np.issubdtype(matrix.dtype, np.number)
        X, cast_note = self._cast(matrix, numeric_is_exact=numeric)
        if cast_note:
            notes.append(cast_note)
        category = COERCED if notes else EXACT
        return Admission(category, X, single=single, coercions=tuple(notes))

    def _cast(
        self, matrix: np.ndarray, numeric_is_exact: bool
    ) -> "tuple[np.ndarray, str | None]":
        """Cast to float64; a non-numeric source dtype needs ``cast``."""
        if numeric_is_exact:
            return np.asarray(matrix, dtype=np.float64), None
        if not self.policy.cast:
            raise AdmissionError(
                f"values have dtype {matrix.dtype} (policy forbids casting "
                "non-numeric values)"
            )
        try:
            cast = np.asarray(
                [
                    [
                        np.nan
                        if value is None
                        else float(value)
                        for value in row
                    ]
                    for row in matrix
                ],
                dtype=np.float64,
            )
        except (TypeError, ValueError) as exc:
            raise AdmissionError(
                f"uncastable value in request: {exc}"
            ) from exc
        return cast, "cast"
