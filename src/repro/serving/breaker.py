"""Per-expression circuit breaker: closed → open → half-open → closed.

One pathological expression — an operator whose fitted state went bad, a
domain function that explodes on a new value range — must not cost every
future request the work of failing it again. The serving loop already
turns a failing expression into a NaN column (PR 7's ``errors="null"``
semantics); the breaker adds *memory* on top: after
``failure_threshold`` consecutive failures the expression is served as
NaN without being evaluated at all (state ``open``), and after
``cooldown`` seconds one probe evaluation is allowed through (state
``half_open``) — success closes the breaker, failure re-opens it for
another cooldown.

Time is supplied by the caller as a **monotonic** timestamp
(``time.monotonic()``), never wall-clock: a ``time.time()`` clock jumps
under NTP corrections and would re-open or freeze breakers spuriously
(the ``wallclock-deadline`` lint rule enforces this repo-wide).

The breaker is deliberately not thread-safe: a
:class:`~repro.serving.ServingSession` drives each breaker from its
single serve loop, and ``allow``/``record_*`` pairs resolve before the
next request is admitted.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError

#: The three breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-memory for one expression key.

    Parameters
    ----------
    key:
        The expression key this breaker guards (diagnostic only).
    failure_threshold:
        Consecutive failures that trip ``closed`` → ``open``.
    cooldown:
        Seconds an ``open`` breaker waits before allowing a half-open
        probe, measured on the caller-supplied monotonic clock.
    """

    def __init__(
        self, key: str, failure_threshold: int = 3, cooldown: float = 1.0
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ConfigurationError(f"cooldown must be >= 0, got {cooldown}")
        self.key = key
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.consecutive_failures = 0
        #: Times this breaker transitioned into ``open``.
        self.trips = 0
        self._opened_at: "float | None" = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker({self.key!r}, state={self.state!r}, "
            f"failures={self.consecutive_failures}, trips={self.trips})"
        )

    # ------------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """Whether the expression may be evaluated at monotonic time ``now``.

        An ``open`` breaker whose cooldown has elapsed transitions to
        ``half_open`` and admits this one call as the probe; while the
        probe is outstanding further calls are refused.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self._opened_at >= self.cooldown:
                self.state = HALF_OPEN
                return True
            return False
        return False  # half-open: the probe is already in flight

    def record_success(self) -> None:
        """The evaluation succeeded: reset to ``closed``."""
        self.state = CLOSED
        self.consecutive_failures = 0
        self._opened_at = None

    def record_failure(self, now: float) -> bool:
        """The evaluation failed; returns True when this call *tripped*
        the breaker into ``open`` (a failed half-open probe re-trips)."""
        self.consecutive_failures += 1
        should_open = (
            self.state == HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        )
        if should_open and self.state != OPEN:
            self.state = OPEN
            self._opened_at = now
            self.trips += 1
            return True
        if should_open:
            self._opened_at = now  # already open: extend the cooldown
        return False
