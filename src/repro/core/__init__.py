"""SAFE core: the paper's primary contribution."""

from .config import SAFEConfig
from .generation import (
    Combination,
    RankedCombination,
    combinations_from_paths,
    fit_mining_model,
    generate_features,
    mined_search_space_size,
    plan_features,
    rank_combinations,
    search_space_size,
)
from .interface import AutoFeatureEngineer
from .pipeline import SAFE, IterationTrace
from .redundancy import remove_redundant_features_blocked
from .scoring import IntervalCodeCache, score_combinations
from .stream import fit_safe_streaming, forest_chunks
from .selection import (
    SelectionReport,
    filter_by_information_value,
    rank_by_importance,
    remove_redundant_features,
    select_features,
)
from .transform import FeatureTransformer

__all__ = [
    "AutoFeatureEngineer",
    "Combination",
    "FeatureTransformer",
    "IntervalCodeCache",
    "IterationTrace",
    "RankedCombination",
    "SAFE",
    "SAFEConfig",
    "SelectionReport",
    "combinations_from_paths",
    "filter_by_information_value",
    "fit_mining_model",
    "fit_safe_streaming",
    "forest_chunks",
    "generate_features",
    "mined_search_space_size",
    "plan_features",
    "rank_by_importance",
    "rank_combinations",
    "remove_redundant_features",
    "remove_redundant_features_blocked",
    "score_combinations",
    "search_space_size",
    "select_features",
]
