"""Blocked incremental Gram-based redundancy removal (Algorithm 4).

The full-matrix formulation of the greedy de-correlation stage builds the
complete k x k Pearson matrix up front — O(k^2 * n) flops and O(k^2)
memory — even though the IV-ordered scan only ever consults correlations
between each candidate and the (typically much smaller) kept set. The
kernel here computes exactly those correlations and nothing else:

1. candidates are visited in decreasing-IV order (ties by column index),
   ``block_size`` at a time;
2. each block's columns are gathered and **standardized once** (centered,
   unit-normalized, with :func:`repro.metrics.pearson_matrix`'s
   constant/noise-floor semantics, see :func:`standardize_columns`);
3. one BLAS matmul per (block, kept-chunk) pair yields every
   candidate-vs-kept correlation — ``|corr(a, b)| = |z_a . z_b|`` for
   standardized columns — reduced immediately to a per-candidate running
   max so working memory stays O(block^2), never O(k * kept);
4. within the block, each candidate is additionally checked against the
   block's earlier survivors with one GEMV;
5. survivors' standardized columns are appended to a growing
   Fortran-ordered kept panel (amortized doubling), so later blocks see
   them through step 3.

Total cost is O(k * |kept| * n) time and O((block + |kept|) * n) memory,
and the kept indices are **identical** to the full-matrix greedy: the
same noise-floor constant rejection, the same NaN propagation (a
non-finite column yields NaN correlations, which fail the
``max <= theta`` check), the same clip of raw products to [-1, 1] before
the threshold comparison, and the same IV tie-break by column order.
(The one caveat: both paths round each correlation through different but
equally-valid BLAS summation orders, so a ``theta`` lying within ~1 ulp
of an *achieved* |correlation| can resolve the ``<= theta`` comparison
either way on either path. Exact values — 0.0 for constants, clipped
1.0 for duplicates — are unaffected, and any configured threshold sits
far from the data's correlations in practice.)

One ordering detail matters for exactness: the full-matrix path zeroes a
constant column's correlation row/column *after* the Gram product, so a
constant column correlates 0.0 with **everything** — including columns
whose correlations are otherwise NaN. Standardized constant columns are
zero vectors, which reproduces the 0.0 against finite partners for free,
but ``0 * NaN = NaN``; the explicit constant masks threaded through
:func:`max_abs_correlation` restore the exact full-matrix value in that
corner too.
"""

from __future__ import annotations

import numpy as np

from ..analysis.registry import (
    batched_kernel,
    chunk_mergeable,
    inplace_mutator,
    kernel_exempt,
)
from ..exceptions import DataError

#: Candidates standardized and checked per BLAS block. 512 columns keep
#: the per-block Gram slabs around a couple of MB for typical row counts
#: while the matmuls stay firmly in the BLAS-efficient regime.
DEFAULT_BLOCK_SIZE = 512


@batched_kernel(oracle="pearson_matrix")
@inplace_mutator
def standardize_columns(
    B: np.ndarray, out: "np.ndarray | None" = None
) -> "tuple[np.ndarray, np.ndarray]":
    """Center and unit-normalize columns, constant-safe like ``pearson_matrix``.

    The dot product of two standardized columns is their Pearson
    correlation. A column whose centered norm is at the float-cancellation
    noise floor (its spread is pure rounding noise relative to its
    magnitude) maps to the zero vector; non-finite columns propagate NaN.
    Returns ``(Z, constant)`` — the standardized block and the boolean
    noise-floor mask (needed by the caller to reproduce the full-matrix
    path's post-product row/column zeroing exactly).

    ``out`` receives the standardized block in place; it may alias ``B``
    itself (the caller's gather buffer), which keeps the hot loop free of
    per-block allocations.
    """
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise DataError("standardize_columns expects a matrix")
    mean = B.mean(axis=0)
    # max(col_max, -col_min) == abs(col).max without materializing abs;
    # NaN propagates through either form identically.
    scale = np.maximum(B.max(axis=0), -B.min(axis=0))
    noise_floor = (
        np.sqrt(B.shape[0]) * np.finfo(np.float64).eps * (scale + 1.0) * 16
    )
    centered = np.subtract(B, mean, out=out)
    # One read pass, no (n, block) squared temp. (einsum accumulates in
    # plain order rather than pairwise, so norms can differ from the
    # full-matrix path's in the last ulp — far inside the noise floor's
    # 16x slack, and of the same order as the BLAS-vs-BLAS rounding the
    # correlation products already carry.)
    norms = np.sqrt(np.einsum("ij,ij->j", centered, centered))
    constant = norms <= noise_floor
    safe = norms.copy()
    safe[constant] = 1.0
    centered /= safe
    centered[:, constant] = 0.0
    return centered, constant


@batched_kernel(oracle="pearson_matrix")
def max_abs_correlation(
    Z: np.ndarray,
    panel: np.ndarray,
    cand_constant: "np.ndarray | None" = None,
    kept_constant: "np.ndarray | None" = None,
    chunk: int = DEFAULT_BLOCK_SIZE,
) -> np.ndarray:
    """Per-candidate ``max_j |corr(candidate, kept_j)|`` via chunked GEMMs.

    ``Z`` holds standardized candidate columns, ``panel`` standardized
    kept columns; products and reduction mirror the full-matrix decision
    values (constant rows/columns forced to 0.0, clip to [-1, 1], then
    abs). The kept dimension is processed ``chunk`` columns at a time and
    reduced immediately, so the working set is O(Z.shape[1] * chunk)
    regardless of how large the kept panel grows. NaN propagates through
    ``np.max``/``np.maximum``, so a non-finite column on either side
    yields NaN (reject) unless the partner is constant.
    """
    out = np.full(Z.shape[1], -np.inf)
    for start in range(0, panel.shape[1], chunk):
        C = Z.T @ panel[:, start : start + chunk]
        if kept_constant is not None:
            C[:, kept_constant[start : start + chunk]] = 0.0
        if cand_constant is not None:
            C[cand_constant, :] = 0.0
        np.clip(C, -1.0, 1.0, out=C)
        np.abs(C, out=C)
        np.maximum(out, C.max(axis=1), out=out)
    return out


@kernel_exempt("associative merge helper for moment partials, not a kernel")
def merge_column_moments(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two :func:`column_moments_partial` results.

    Counts and sums add; max/min combine by elementwise max/min (whose
    NaN propagation matches a single-pass reduction). The float sum
    re-associates, so merged means match in-memory ones to ≤1e-9
    relative, not bit-for-bit.
    """
    out = np.empty_like(a)
    out[0] = a[0] + b[0]
    out[1] = a[1] + b[1]
    out[2] = np.maximum(a[2], b[2])
    out[3] = np.minimum(a[3], b[3])
    return out


@batched_kernel(oracle="pearson_matrix")
@chunk_mergeable(merge=merge_column_moments, exact=False)
def column_moments_partial(F_chunk: np.ndarray) -> np.ndarray:
    """Per-column ``(count, sum, max, min)`` of one row chunk: ``(4, k)``.

    First streaming pass of the redundancy stage: merged moments yield
    each column's mean (``sum / count``) and the constant-detection scale
    (``max(col_max, -col_min)``, i.e. ``abs(col).max`` — NaN propagating,
    exactly as :func:`standardize_columns` computes it). Zero-row chunks
    contribute the reduction identities (0 count/sum, -inf max, +inf min).
    """
    F_chunk = np.asarray(F_chunk, dtype=np.float64)
    if F_chunk.ndim != 2:
        raise DataError("column_moments_partial expects a matrix")
    k = F_chunk.shape[1]
    out = np.empty((4, k))
    out[0] = F_chunk.shape[0]
    if F_chunk.shape[0] == 0:
        out[1] = 0.0
        out[2] = -np.inf
        out[3] = np.inf
        return out
    out[1] = F_chunk.sum(axis=0)
    out[2] = F_chunk.max(axis=0)
    out[3] = F_chunk.min(axis=0)
    return out


@kernel_exempt("associative merge helper for Gram partials, not a kernel")
def merge_grams(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two :func:`centered_gram_partial` results: elementwise sum.

    Float sums re-associate, so merged Gram panels match single-pass ones
    to ≤1e-9 relative.
    """
    return a + b


@batched_kernel(oracle="pearson_matrix")
@chunk_mergeable(merge=merge_grams, exact=False)
def centered_gram_partial(F_chunk: np.ndarray, mean: np.ndarray) -> np.ndarray:
    """Centered Gram panel of one row chunk: ``(B - mean).T @ (B - mean)``.

    Second streaming pass of the redundancy stage, centered around the
    global per-column means from the merged moments. Merged panels feed
    :func:`correlations_from_gram`.
    """
    F_chunk = np.asarray(F_chunk, dtype=np.float64)
    if F_chunk.ndim != 2:
        raise DataError("centered_gram_partial expects a matrix")
    centered = F_chunk - np.asarray(mean, dtype=np.float64)
    return centered.T @ centered


@batched_kernel(oracle="pearson_matrix")
def correlations_from_gram(
    gram: np.ndarray,
    scale: np.ndarray,
    n_rows: int,
) -> np.ndarray:
    """Finalize a pairwise |column| correlation matrix from a merged Gram.

    Reproduces :func:`repro.metrics.information.pearson_matrix`'s
    semantics from sufficient statistics: norms come off the Gram
    diagonal, the constant/noise-floor rejection uses the streamed
    ``abs(col).max`` scale, constant rows/columns are zeroed *after* the
    product (so a constant column correlates 0.0 with everything,
    including NaN partners), the diagonal is forced to 1, and values clip
    to [-1, 1]. Float sums re-associate, so entries match the in-memory
    matrix to ≤1e-9 relative.
    """
    gram = np.asarray(gram, dtype=np.float64)
    norms = np.sqrt(np.maximum(np.diag(gram), 0.0))
    noise_floor = (
        np.sqrt(n_rows) * np.finfo(np.float64).eps * (np.asarray(scale) + 1.0) * 16
    )
    constant = norms <= noise_floor
    safe = norms.copy()
    safe[constant] = 1.0
    corr = gram / np.outer(safe, safe)
    corr[constant, :] = 0.0
    corr[:, constant] = 0.0
    np.fill_diagonal(corr, 1.0)
    return np.clip(corr, -1.0, 1.0)


@kernel_exempt("greedy scan over a finalized correlation matrix, not a kernel")
def greedy_decorrelate(corr: np.ndarray, ivs: np.ndarray, theta: float) -> np.ndarray:
    """Algorithm 4 greedy scan over a full correlation matrix.

    Candidates are visited in decreasing-IV order (ties by index); each
    is kept iff its |corr| with every already-kept candidate is at most
    ``theta``. NaN correlations fail the comparison (reject), matching
    the blocked and full-matrix paths. Returns sorted kept indices into
    ``corr``'s columns.
    """
    ivs = np.asarray(ivs, dtype=np.float64).ravel()
    order = np.lexsort((np.arange(ivs.size), -ivs))
    kept: list[int] = []
    for i in order:
        if kept:
            vals = np.abs(corr[i, kept])
            with np.errstate(invalid="ignore"):
                if not np.all(vals <= theta):
                    continue
        kept.append(int(i))
    return np.sort(np.asarray(kept, dtype=np.int64))


def _grown_panel(
    panel: np.ndarray, constant: np.ndarray, total: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Double the kept panel's capacity (bounded by ``total`` columns)."""
    capacity = min(total, max(2 * panel.shape[1], 1))
    bigger = np.empty((panel.shape[0], capacity), order="F")
    bigger[:, : panel.shape[1]] = panel
    bigger_constant = np.zeros(capacity, dtype=bool)
    bigger_constant[: constant.size] = constant
    return bigger, bigger_constant


@batched_kernel(oracle="pearson_matrix")
def remove_redundant_features_blocked(
    X: np.ndarray,
    ivs: np.ndarray,
    theta: float,
    columns: "np.ndarray | None" = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    n_jobs: int = 1,
) -> np.ndarray:
    """Algorithm 4 greedy de-correlation without the k x k matrix.

    Parameters
    ----------
    X:
        The (n, m) data matrix. Candidate columns are gathered from it one
        block at a time, so callers never need to fancy-index a candidate
        submatrix up front.
    ivs:
        Information value of each candidate, aligned with ``columns``
        (or with ``X``'s columns when ``columns`` is ``None``).
    theta:
        Absolute-Pearson threshold; a candidate is kept iff its |corr|
        with every already-kept candidate is at most ``theta``.
    columns:
        Optional candidate column indices into ``X``. ``None`` means every
        column is a candidate.
    block_size:
        Candidates standardized and checked per BLAS block.
    n_jobs:
        Fan the candidate-vs-kept correlation of each block across
        processes (``repro.parallel.parallel_max_abs_correlation``).

    Returns
    -------
    Sorted kept column indices into ``X`` (a subset of ``columns``),
    identical to the full-matrix greedy's output.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataError("remove_redundant_features expects a matrix")
    ivs = np.asarray(ivs, dtype=np.float64).ravel()
    if columns is None:
        cols = np.arange(X.shape[1], dtype=np.int64)
    else:
        cols = np.asarray(columns, dtype=np.int64).ravel()
    if cols.size != ivs.size:
        raise DataError("ivs length must match number of candidate columns")
    if cols.size == 0:
        return np.empty(0, dtype=np.int64)
    if block_size < 1:
        raise DataError("block_size must be >= 1")

    n_rows = X.shape[0]
    order = np.lexsort((np.arange(ivs.size), -ivs))
    panel = np.empty((n_rows, min(cols.size, block_size)), order="F")
    panel_constant = np.zeros(panel.shape[1], dtype=bool)
    n_kept = 0
    kept: list[int] = []

    # One reusable O(block * n) gather buffer when X's columns are
    # contiguous (the Fortran layout ``evaluate_forest`` blocks have):
    # each gather is then a straight per-column memcpy and the block is
    # standardized in place — zero per-block allocations. A row-major X
    # falls back to numpy's row-friendly fancy gather (a fresh C-order
    # block, standardized in place just the same).
    buf = (
        np.empty((n_rows, min(cols.size, block_size)), order="F")
        if X.flags.f_contiguous
        else None
    )

    for start in range(0, order.size, block_size):
        visit = order[start : start + block_size]
        block_cols = cols[visit]
        if buf is not None:
            B = buf[:, : visit.size]
            for t, c in enumerate(block_cols):
                B[:, t] = X[:, c]
        else:
            B = X[:, block_cols]
        Z, z_constant = standardize_columns(B, out=B)  # repro: ignore[inplace-alias] B is the owned gather buf or a fancy-index copy of X, never a view
        if n_kept:
            if n_jobs != 1:
                from ..parallel import parallel_max_abs_correlation

                pre_max = parallel_max_abs_correlation(
                    Z,
                    panel[:, :n_kept],
                    cand_constant=z_constant,
                    kept_constant=panel_constant[:n_kept],
                    n_jobs=n_jobs,
                )
            else:
                pre_max = max_abs_correlation(
                    Z,
                    panel[:, :n_kept],
                    cand_constant=z_constant,
                    kept_constant=panel_constant[:n_kept],
                )
        else:
            pre_max = np.full(visit.size, -np.inf)

        block_start = n_kept
        for i in range(visit.size):
            worst = pre_max[i]
            if n_kept > block_start:
                # Correlations against this block's earlier survivors.
                vals = panel[:, block_start:n_kept].T @ Z[:, i]
                vals[panel_constant[block_start:n_kept]] = 0.0
                if z_constant[i]:
                    vals[:] = 0.0
                np.clip(vals, -1.0, 1.0, out=vals)
                np.abs(vals, out=vals)
                worst = np.maximum(worst, vals.max())
            if n_kept == 0 or worst <= theta:
                if n_kept == panel.shape[1]:
                    panel, panel_constant = _grown_panel(
                        panel, panel_constant, cols.size
                    )
                panel[:, n_kept] = Z[:, i]
                panel_constant[n_kept] = z_constant[i]
                n_kept += 1
                kept.append(int(visit[i]))

    return np.sort(cols[np.asarray(kept, dtype=np.int64)])
