"""Common interface implemented by SAFE and every baseline method.

Each automatic feature engineering method is an object with a ``name``
and a ``fit(train, valid=None) -> FeatureTransformer`` method, so the
experiment harness can treat ORIG / FCTree / TFC / RAND / IMP / SAFE
uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..tabular.dataset import Dataset
from .transform import FeatureTransformer


class AutoFeatureEngineer(ABC):
    """Base class for automatic feature engineering methods."""

    #: Short display name used in experiment tables ("SAFE", "FCT", ...).
    name: str = ""

    @abstractmethod
    def fit(
        self, train: Dataset, valid: "Dataset | None" = None
    ) -> FeatureTransformer:
        """Learn a feature-generation function Ψ from labeled data.

        Implementations may additionally accept a
        :class:`~repro.tabular.ChunkedDataset` as ``train`` to fit out
        of core from a row stream (SAFE does; see
        :mod:`repro.core.stream`) — the returned transformer is the same
        servable Ψ either way.
        """

    def fit_transform(
        self, train: Dataset, valid: "Dataset | None" = None
    ) -> "tuple[FeatureTransformer, Dataset]":
        """Convenience: fit Ψ and apply it to the training set."""
        transformer = self.fit(train, valid)
        return transformer, transformer.transform(train)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
