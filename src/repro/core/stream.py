"""Out-of-core SAFE fit: Algorithm 1 over a chunked row stream.

The in-memory :meth:`~repro.core.pipeline.SAFE.fit` holds the current
feature matrix, the candidate matrix, and a validation copy of each.
This driver runs the *same* iteration — mine paths, rank combinations,
generate, select, repeat — against a :class:`~repro.tabular.ChunkedDataset`
whose rows never co-exist in memory. Each stage consumes the stream
through the mergeable sufficient-statistics kernels the in-memory entry
points are one-chunk callers of:

* the mining and ranking GBMs stream through
  :func:`~repro.boosting.stream.fit_gbm_streaming`;
* combination ranking merges :func:`~repro.core.scoring.combination_count_partial`
  cells and finalizes with the shared gain-ratio arithmetic;
* the IV filter merges :func:`~repro.metrics.batched.iv_bin_counts`
  partials over sketch-derived equal-frequency edges
  (row-shardable across processes via
  :func:`repro.parallel.parallel_stream_iv_counts`);
* redundancy removal merges moment and centered-Gram panels from
  :mod:`repro.core.redundancy` and runs the same greedy scan.

Feature columns are re-derived per chunk: expressions evaluate against a
fresh per-chunk :class:`~repro.operators.engine.EvalCache` and are
sanitized in place, which is exact because the streaming path only
admits *row-wise stateless* operators (``Operator.rowwise`` and not
``Operator.is_stateful``) — output row ``i`` depends only on input row
``i``, so chunked evaluation is bit-identical to full-matrix evaluation.

Parity with the in-memory fit: every count-valued statistic merges in
exact integer arithmetic, so with ``sketch="exact"`` (bit-identical
quantile edges) the selected Ψ reproduces the in-memory fit's on
fixed-seed workloads; float accumulations (GBM leaf values, Gram
panels) re-associate and match to ≤1e-9 relative, so gain ties at the
last ulp are the one place tree structure can legitimately differ. With
``sketch="merge"`` edges are approximate within one sample rank and Ψ
may differ accordingly.

Unsupported in v1 (rejected with ``ConfigurationError``): validation
sets and operators that are stateful or not row-wise.
"""

from __future__ import annotations

import numpy as np

from ..boosting.gbm import GradientBoostingClassifier
from ..boosting.stream import fit_gbm_streaming
from ..boosting.tree import GAIN_TIE_RTOL
from ..exceptions import ConfigurationError, DataError
from ..metrics.batched import iv_from_counts
from ..metrics.information import entropy_from_counts
from ..operators.base import resolve_operators
from ..operators.engine import EvalCache, evaluate_forest
from ..operators.expressions import Applied, Expression, Var
from ..runtime.checkpoint import (
    CheckpointManager,
    StatsCheckpointStore,
    config_fingerprint,
    schema_fingerprint,
)
from ..runtime.failpoints import failpoint
from ..runtime.report import QuarantineRecord, RuntimeReport
from ..tabular.binning import DEFAULT_SKETCH_CAPACITY, streamed_quantile_edges
from ..tabular.io import ChunkedDataset
from ..tabular.preprocess import clean_matrix
from ..utils import Timer, as_label_vector
from .generation import combinations_from_paths, plan_features, rank_from_scores
from .pipeline import IterationTrace, _trace_from_scalars, _trace_scalars
from .redundancy import (
    centered_gram_partial,
    column_moments_partial,
    correlations_from_gram,
    greedy_decorrelate,
    merge_column_moments,
    merge_grams,
)
from .scoring import (
    _DENSE_CELL_FACTOR,
    _DENSE_CELL_FLOOR,
    combination_count_partial,
    gain_ratio_from_combination_counts,
    merge_combination_counts,
)
from .selection import SelectionReport
from .transform import FeatureTransformer


def forest_chunks(data: ChunkedDataset, expressions: "list[Expression]"):
    """Restartable stream of sanitized feature chunks for a forest.

    Returns a zero-argument callable (the convention every streaming
    kernel consumes) yielding ``(rows, block, y_chunk)`` where ``block``
    is the chunk's ``(len(rows), len(expressions))`` evaluated forest,
    cleaned in place — exactly the rows of the matrix the in-memory
    pipeline would pass to the same stage. The per-chunk
    :class:`EvalCache` shares subtree columns within the chunk and dies
    with it, keeping memory at O(chunk).
    """

    def iterate():
        for rows, X_chunk, y_chunk in data.iter_chunks():
            cache = EvalCache(np.asarray(X_chunk, dtype=np.float64))
            block = clean_matrix(
                evaluate_forest(expressions, cache=cache), copy=False
            )
            yield rows, block, y_chunk

    return iterate


def _check_streamable_config(cfg) -> None:
    """Reject configurations the v1 streaming fit cannot honour exactly."""
    blocked = [
        op.name
        for op in resolve_operators(cfg.operators)
        if op.is_stateful or not op.rowwise
    ]
    if blocked:
        raise ConfigurationError(
            "streaming fit supports row-wise stateless operators only; "
            f"not streamable: {blocked}"
        )


def _count_positives(data: ChunkedDataset) -> int:
    """One validation pass over the labels; returns the positive count."""
    n_pos = 0
    for rows, _, y_chunk in data.iter_chunks():
        if y_chunk is None:
            raise DataError("streaming fit needs labeled chunks")
        n_pos += int(as_label_vector(y_chunk, len(rows)).sum())
    return n_pos


def _rank_combinations_streamed(
    chunks, combos, gamma: int, n_rows: int, n_pos: int, stats=None
):
    """Algorithm 2 over the stream: merged count cells, shared finalize."""
    kept = [c for c in combos if c.features]
    if not kept:
        return []
    dense_limit = 2 * max(_DENSE_CELL_FACTOR * n_rows, _DENSE_CELL_FLOOR)

    def compute_partials():
        partials = None
        for _, block, y_chunk in chunks():
            part = combination_count_partial(block, y_chunk, kept, dense_limit)
            partials = (
                part
                if partials is None
                else merge_combination_counts(partials, part)
            )
        return partials

    if stats is None:
        partials = compute_partials()
    else:
        partials = stats.run("rank-combos", compute_partials)
    base = entropy_from_counts(np.array([n_rows - n_pos, n_pos]))
    ratios = gain_ratio_from_combination_counts(partials, n_rows, base)
    return rank_from_scores(kept, ratios, gamma)


def _generate_streamed(
    plan,
    data: ChunkedDataset,
    quarantine: "list[QuarantineRecord] | None",
    stats=None,
) -> list[Expression]:
    """Generation passes 2/3 over the stream (all operators stateless).

    In strict mode the expressions exist as soon as the plan does — no
    column needs materializing to construct a stateless ``Applied`` — so
    only the per-expression failpoints fire. In quarantine mode one
    stats pass evaluates every planned expression chunk-at-a-time,
    recording raises and OR-accumulating column finiteness; the
    screening decisions (a raise, or no finite value anywhere in the
    column) match the in-memory `_generate_with_quarantine` exactly.
    """
    if quarantine is None:
        for _ in plan:
            failpoint("generation.operator")
        return [Applied(op.name, children, None) for op, children in plan]

    exprs = [Applied(op.name, children, None) for op, children in plan]

    def compute_screen():
        reasons: "list[str | None]" = [None] * len(plan)
        any_finite = np.zeros(len(plan), dtype=bool)
        first_chunk = True
        for _, X_chunk, _ in data.iter_chunks():
            cache = EvalCache(np.asarray(X_chunk, dtype=np.float64))
            for i, expr in enumerate(exprs):
                if reasons[i] is not None:
                    continue
                try:
                    if first_chunk:
                        failpoint("generation.operator")
                    column = cache.column(expr)
                except Exception as exc:
                    reasons[i] = repr(exc)
                    continue
                if not any_finite[i] and np.isfinite(column).any():
                    any_finite[i] = True
            first_chunk = False
        return {"reasons": reasons, "any_finite": any_finite}

    if stats is None:
        screen = compute_screen()
    else:
        screen = stats.run("generate-screen", compute_screen)
    reasons = screen["reasons"]
    any_finite = screen["any_finite"]

    out: list[Expression] = []
    for i, (op, children) in enumerate(plan):
        key = op.format(*(c.key for c in children))
        if reasons[i] is not None:
            quarantine.append(
                QuarantineRecord(key=key, operator=op.name, reason=reasons[i])
            )
        elif not any_finite[i]:
            quarantine.append(
                QuarantineRecord(
                    key=key,
                    operator=op.name,
                    reason="column is entirely non-finite",
                )
            )
        else:
            out.append(exprs[i])
    return out


def _select_streamed(
    data: ChunkedDataset,
    candidates: "list[Expression]",
    n_rows: int,
    n_pos: int,
    cfg,
    max_output: "int | None",
    stats=None,
) -> SelectionReport:
    """The three selection stages over the stream; same report shape."""
    failpoint("selection.select")
    n_neg = n_rows - n_pos
    chunks_cand = forest_chunks(data, candidates)

    # -- Algorithm 3: IV filter ------------------------------------------
    # Equal-frequency edges come from the sketch pass (exact mode is
    # bit-identical to the in-memory matrix kernel's sort-derived edges);
    # the side stats reproduce its scorability mask.
    def compute_edges():
        return streamed_quantile_edges(
            chunks_cand,
            len(candidates),
            cfg.iv_bins,
            sketch=cfg.sketch,
            capacity=DEFAULT_SKETCH_CAPACITY,
        )

    if stats is None:
        edges_state = compute_edges()
    else:
        edges_state = stats.run("sel-edges", compute_edges)
    edges_per_col, n_finite, col_min, col_max = edges_state
    with np.errstate(invalid="ignore"):
        scorable = (n_finite > 0) & (col_min < col_max)
    n_edges = np.array([e.size for e in edges_per_col], dtype=np.int64)
    stride = int(n_edges.max()) + 2
    from ..parallel import parallel_stream_iv_counts

    def compute_counts():
        # The shard reducer owns retries and merged-prefix checkpoints;
        # with n_jobs=1 it runs the single shard serially in-process.
        return parallel_stream_iv_counts(
            data,
            candidates,
            edges_per_col,
            scorable,
            stride,
            n_jobs=cfg.n_jobs,
            stats=None if stats is None else stats.scoped("sel-iv"),
        )

    if stats is None:
        counts = compute_counts()
    else:
        counts = stats.run("sel-iv-counts", compute_counts)
    ivs = iv_from_counts(counts[0], counts[1], n_pos, n_neg, scorable)
    kept_iv = np.flatnonzero(ivs > cfg.iv_threshold)
    if kept_iv.size < 1:  # min_keep fallback of the in-memory filter
        kept_iv = np.argsort(-ivs)[:1]
        kept_iv.sort()

    # -- Algorithm 4: redundancy removal ---------------------------------
    exprs_iv = [candidates[i] for i in kept_iv]
    chunks_iv = forest_chunks(data, exprs_iv)

    def compute_moments():
        moments = None
        for _, F_chunk, _ in chunks_iv():
            part = column_moments_partial(F_chunk)
            moments = (
                part if moments is None else merge_column_moments(moments, part)
            )
        return moments

    if stats is None:
        moments = compute_moments()
    else:
        moments = stats.run("sel-moments", compute_moments)
    mean = moments[1] / moments[0]  # repro: ignore[div-guard] n_rows >= 1 validated at fit entry
    scale = np.maximum(moments[2], -moments[3])

    def compute_gram():
        gram = None
        for _, F_chunk, _ in chunks_iv():
            part = centered_gram_partial(F_chunk, mean)
            gram = part if gram is None else merge_grams(gram, part)
        return gram

    if stats is None:
        gram = compute_gram()
    else:
        gram = stats.run("sel-gram", compute_gram)
    corr = correlations_from_gram(gram, scale, n_rows)
    kept_local = greedy_decorrelate(corr, ivs[kept_iv], cfg.pearson_threshold)
    kept_red = kept_iv[kept_local]

    # -- Stage 3: importance ranking -------------------------------------
    exprs_red = [candidates[i] for i in kept_red]
    ranking = GradientBoostingClassifier(
        n_estimators=cfg.ranking_n_estimators,
        max_depth=cfg.ranking_max_depth,
        random_state=cfg.random_state,
        tie_rtol=GAIN_TIE_RTOL,
    )
    fit_gbm_streaming(
        ranking,
        forest_chunks(data, exprs_red),
        n_rows,
        len(exprs_red),
        sketch=cfg.sketch,
        stats=None if stats is None else stats.scoped("sel-rank-gbm"),
    )
    importance = ranking.feature_importances_
    order_local = np.lexsort((np.arange(importance.size), -importance))
    if max_output is not None:
        order_local = order_local[:max_output]
    final = kept_red[order_local]
    return SelectionReport(
        n_candidates=len(candidates),
        kept_after_iv=tuple(int(i) for i in kept_iv),
        kept_after_redundancy=tuple(int(i) for i in kept_red),
        final_order=tuple(int(i) for i in final),
        information_values=tuple(float(v) for v in ivs),
    )


def fit_safe_streaming(
    safe,
    train: ChunkedDataset,
    valid=None,
    checkpoint_dir: "str | None" = None,
) -> FeatureTransformer:
    """Run Algorithm 1 against a chunked row stream, out of core.

    ``safe`` is the :class:`~repro.core.pipeline.SAFE` instance whose
    config, traces, and runtime report this fit populates —
    :meth:`SAFE.fit` dispatches here when handed a
    :class:`~repro.tabular.ChunkedDataset`. Checkpoint/resume semantics
    match the in-memory fit (the persisted state is the survivor
    expressions, which need no matrix to restore).
    """
    cfg = safe.config
    if valid is not None:
        raise ConfigurationError(
            "streaming fit does not support a validation set"
        )
    _check_streamable_config(cfg)
    n_rows = train.n_rows
    if n_rows < 1:
        raise DataError("streaming fit needs at least one row")
    n_pos = _count_positives(train)
    if n_pos == 0 or n_pos == n_rows:
        raise DataError("SAFE.fit requires both classes in the training labels")

    max_output = cfg.max_output_features
    if max_output is None:
        max_output = 2 * train.n_cols  # the paper's 2M budget

    expressions: list[Expression] = [Var(i) for i in range(train.n_cols)]
    timer = Timer()
    safe.traces_ = []
    runtime_report = RuntimeReport()
    safe.runtime_report_ = runtime_report
    runtime_report.chunks_quarantined.extend(train.quarantined_chunks())
    fingerprint = config_fingerprint(cfg, train.names)
    start_iteration = 0
    manager: "CheckpointManager | None" = None
    stats_store: "StatsCheckpointStore | None" = None
    if checkpoint_dir is not None:
        manager = CheckpointManager(checkpoint_dir)
        state, skipped = manager.latest(expected_config_hash=fingerprint)
        runtime_report.checkpoints_skipped.extend(skipped)
        if state is not None:
            expressions = list(state.expressions)
            start_iteration = state.iteration + 1
            runtime_report.resumed_from_iteration = state.iteration
            safe.traces_ = [_trace_from_scalars(t) for t in state.traces]
        stats_store = StatsCheckpointStore(
            manager.directory / "stats", fingerprint
        )

    for iteration in range(start_iteration, cfg.n_iterations):
        if (
            cfg.time_budget_seconds is not None
            and timer.elapsed() >= cfg.time_budget_seconds
        ):
            break
        iter_timer = Timer()
        chunks_cur = forest_chunks(train, expressions)
        it_stats = (
            None
            if stats_store is None
            else stats_store.scoped(f"it{iteration:05d}")
        )

        # -- Generation --------------------------------------------------
        mining = GradientBoostingClassifier(
            n_estimators=cfg.mining_n_estimators,
            max_depth=cfg.mining_max_depth,
            learning_rate=cfg.mining_learning_rate,
            random_state=cfg.random_state,
            tie_rtol=GAIN_TIE_RTOL,
        )
        fit_gbm_streaming(
            mining,
            chunks_cur,
            n_rows,
            len(expressions),
            sketch=cfg.sketch,
            stats=None if it_stats is None else it_stats.scoped("mine-gbm"),
        )
        paths = mining.paths()
        combos = combinations_from_paths(paths, max_size=cfg.max_combination_size)
        ranked = _rank_combinations_streamed(
            chunks_cur, combos, cfg.gamma, n_rows, n_pos, stats=it_stats
        )
        existing = {e.key for e in expressions}
        plan = plan_features(ranked, cfg.operators, expressions, existing)
        quarantined: "list[QuarantineRecord] | None" = (
            [] if cfg.on_operator_error == "quarantine" else None
        )
        new_exprs = _generate_streamed(plan, train, quarantined, stats=it_stats)
        if quarantined:
            runtime_report.record_quarantine(iteration, quarantined)
        if not new_exprs and iteration > 0:
            break  # nothing new to add; feature set has stabilized

        # -- Candidate pool + selection ----------------------------------
        if cfg.keep_originals or not new_exprs:
            candidates = list(expressions) + new_exprs
        else:
            candidates = new_exprs
        report = _select_streamed(
            train, candidates, n_rows, n_pos, cfg, max_output, stats=it_stats
        )
        chosen = list(report.final_order)
        if not chosen:
            break
        expressions = [candidates[i] for i in chosen]
        safe.traces_.append(
            IterationTrace(
                iteration=iteration,
                n_paths=len(paths),
                n_combinations=len(combos),
                n_generated=len(new_exprs),
                n_candidates=len(candidates),
                selection=report,
                elapsed_seconds=iter_timer.elapsed(),
                n_quarantined=len(quarantined) if quarantined else 0,
            )
        )
        if manager is not None:
            manager.save(
                iteration,
                expressions,
                fingerprint,
                traces=[_trace_scalars(t) for t in safe.traces_],
            )
            runtime_report.checkpoints_written += 1
            # The iteration's survivors are durable; its mid-iteration
            # statistics can never be needed again and must not leak
            # into the next iteration's stage keys.
            stats_store.clear()
        failpoint("pipeline.iteration")

    if stats_store is not None:
        runtime_report.stats_checkpoints_written = stats_store.written
        runtime_report.stats_stages_resumed = list(stats_store.resumed)
        runtime_report.stats_checkpoints_skipped = list(stats_store.skipped)
    return FeatureTransformer(
        expressions=tuple(expressions),
        original_names=train.names,
        metadata={
            "method": safe.name,
            "n_iterations_run": len(safe.traces_),
            "operators": list(cfg.operators),
            "schema_hash": schema_fingerprint(train.names),
            "config_hash": fingerprint,
        },
    )
