"""Configuration for the SAFE pipeline (Algorithm 1 hyper-parameters).

The paper's "strong applicability" requirement means hyper-parameters only
control *complexity*, not behaviour: iteration budget, tree counts/depths
of the two internal XGBoost models, the combination budget γ, and the two
selection thresholds α (IV) and θ (Pearson) whose defaults come straight
from Tables I and II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ConfigurationError
from ..metrics.information import DEFAULT_IV_THRESHOLD, DEFAULT_PEARSON_THRESHOLD
from ..operators.base import PAPER_OPERATOR_SET, resolve_operators


@dataclass(frozen=True)
class SAFEConfig:
    """All knobs of the SAFE procedure, with the paper's defaults.

    Parameters
    ----------
    operators:
        Names of registered operators used in the generation stage.
        Defaults to the paper's experimental set {+, −, ×, ÷}. Unary
        operators apply to single split features; binary operators to
        feature pairs mined from tree paths; ternary to triples.
    n_iterations:
        ``nIter`` of Algorithm 1.
    time_budget_seconds:
        ``tIter`` of Algorithm 1 — the loop exits when either budget is
        exhausted. ``None`` disables the wall-clock bound.
    gamma:
        Number of top feature combinations (by information gain ratio)
        kept for generation (Algorithm 2's γ).
    max_combination_size:
        Largest combination arity mined from paths (2 = pairs, matching
        the binary-operator experiments; 3 enables ternary operators).
    max_output_features:
        Cap on features returned per iteration. ``None`` means the paper's
        ``2 * M`` (twice the original feature count).
    iv_threshold, iv_bins:
        α and β of Algorithm 3 (defaults 0.1 and 10).
    pearson_threshold:
        θ of Algorithm 4 (default 0.8).
    mining_*:
        Size of the combination-mining GBM (K₁/D₁ in the complexity
        analysis — the lever Eq. 13 says controls total cost).
    ranking_*:
        Size of the importance-ranking GBM (K₂/D₂).
    keep_originals:
        Always retain original features in the candidate pool (they can
        still be dropped by selection, as in the paper).
    n_jobs:
        Worker processes for the per-feature information-value stage and
        the combination-ranking stage (§IV-E.2's "calculated in
        parallel" requirement; ranking chunks over combinations). ``1``
        (default) is fully serial; ``-1`` uses every core.
    on_operator_error:
        ``"quarantine"`` (default) removes an expression whose operator
        raises — or whose generated column has no finite value — from
        the iteration, records it on the
        :class:`~repro.runtime.RuntimeReport`, and continues the fit;
        ``"raise"`` restores strict fail-fast semantics (the fault
        aborts the fit).
    sketch:
        Quantile-edge mode of the out-of-core streaming fit (only
        consulted when ``fit`` receives a
        :class:`~repro.tabular.ChunkedDataset`). ``"merge"`` (default)
        builds equal-frequency edges from bounded-memory mergeable
        sketches (rank error ≤ 1/capacity per chunk merge, edges within
        one sample rank of exact); ``"exact"`` streams full sorted
        columns in batched passes — more memory and passes, but every
        edge (and hence the kept Ψ) is bit-identical to the in-memory
        fit, which is what the parity gates run.
    random_state:
        Seed for all internal randomness.
    """

    operators: tuple[str, ...] = PAPER_OPERATOR_SET
    n_iterations: int = 1
    time_budget_seconds: "float | None" = None
    gamma: int = 50
    max_combination_size: int = 2
    max_output_features: "int | None" = None
    iv_threshold: float = DEFAULT_IV_THRESHOLD
    iv_bins: int = 10
    pearson_threshold: float = DEFAULT_PEARSON_THRESHOLD
    mining_n_estimators: int = 20
    mining_max_depth: int = 4
    mining_learning_rate: float = 0.3
    ranking_n_estimators: int = 20
    ranking_max_depth: int = 4
    keep_originals: bool = True
    n_jobs: int = 1
    on_operator_error: str = "quarantine"
    sketch: str = "merge"
    random_state: "int | None" = 0

    def __post_init__(self) -> None:
        if self.n_iterations < 1:
            raise ConfigurationError("n_iterations must be >= 1")
        if self.time_budget_seconds is not None and self.time_budget_seconds <= 0:
            raise ConfigurationError("time_budget_seconds must be positive")
        if self.gamma < 1:
            raise ConfigurationError("gamma must be >= 1")
        if not 1 <= self.max_combination_size <= 4:
            raise ConfigurationError("max_combination_size must be in [1, 4]")
        if self.max_output_features is not None and self.max_output_features < 1:
            raise ConfigurationError("max_output_features must be >= 1")
        if self.iv_threshold < 0:
            raise ConfigurationError("iv_threshold must be >= 0")
        if self.iv_bins < 2:
            raise ConfigurationError("iv_bins must be >= 2")
        if not 0 < self.pearson_threshold <= 1:
            raise ConfigurationError("pearson_threshold must be in (0, 1]")
        if min(self.mining_n_estimators, self.ranking_n_estimators) < 1:
            raise ConfigurationError("internal GBM tree counts must be >= 1")
        if self.n_jobs != -1 and self.n_jobs < 1:
            raise ConfigurationError("n_jobs must be >= 1 or -1 for all cores")
        if self.on_operator_error not in ("quarantine", "raise"):
            raise ConfigurationError(
                "on_operator_error must be 'quarantine' or 'raise'"
            )
        if self.sketch not in ("merge", "exact"):
            raise ConfigurationError("sketch must be 'merge' or 'exact'")
        # Fail fast on unknown operator names.
        resolve_operators(self.operators)
