"""SAFE: the iterative generation/selection pipeline (Algorithm 1).

Each iteration:

1. train the mining GBM on the current feature set (line 3);
2. form feature combinations from same-path split features (line 4);
3. sort combinations by information gain ratio, keep top γ (line 5);
4. apply the operator set to the surviving combinations (line 6);
5. pool base + generated candidates (line 7);
6. Algorithm 3 — drop low-IV candidates (line 8);
7. Algorithm 4 — drop redundant candidates (line 9);
8. rank the rest by GBM gain and truncate to the output budget (line 10);
9. the survivors become the next iteration's base features (line 11).

The fitted result is a :class:`FeatureTransformer` (Ψ) whose expressions
are composed over *original* columns, so chained iterations can build
higher-order features while the plan stays directly servable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import DataError
from ..operators.engine import EvalCache, evaluate_forest
from ..operators.expressions import Expression, Var
from ..runtime.checkpoint import (
    CheckpointManager,
    config_fingerprint,
    schema_fingerprint,
)
from ..runtime.failpoints import failpoint
from ..runtime.report import QuarantineRecord, RuntimeReport
from ..tabular.dataset import Dataset
from ..tabular.io import ChunkedDataset
from ..tabular.preprocess import clean_matrix
from ..utils import Timer
from .config import SAFEConfig
from .generation import (
    combinations_from_paths,
    fit_mining_model,
    generate_features,
    rank_combinations,
)
from .interface import AutoFeatureEngineer
from .selection import SelectionReport, select_features
from .transform import FeatureTransformer


@dataclass(frozen=True)
class IterationTrace:
    """Diagnostics recorded for one Algorithm 1 iteration.

    ``selection`` is ``None`` on traces restored from a checkpoint (only
    the scalar counters are persisted); live iterations always carry the
    full :class:`SelectionReport`.
    """

    iteration: int
    n_paths: int
    n_combinations: int
    n_generated: int
    n_candidates: int
    selection: "SelectionReport | None"
    elapsed_seconds: float
    n_quarantined: int = 0


def _trace_scalars(trace: IterationTrace) -> dict:
    """The checkpoint-persisted (JSON-scalar) subset of one trace."""
    return {
        "iteration": trace.iteration,
        "n_paths": trace.n_paths,
        "n_combinations": trace.n_combinations,
        "n_generated": trace.n_generated,
        "n_candidates": trace.n_candidates,
        "elapsed_seconds": trace.elapsed_seconds,
        "n_quarantined": trace.n_quarantined,
    }


def _trace_from_scalars(payload: dict) -> IterationTrace:
    """Rebuild a (selection-less) trace from checkpointed scalars."""
    return IterationTrace(
        iteration=int(payload.get("iteration", 0)),
        n_paths=int(payload.get("n_paths", 0)),
        n_combinations=int(payload.get("n_combinations", 0)),
        n_generated=int(payload.get("n_generated", 0)),
        n_candidates=int(payload.get("n_candidates", 0)),
        selection=None,
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        n_quarantined=int(payload.get("n_quarantined", 0)),
    )


@dataclass
class SAFE(AutoFeatureEngineer):
    """Scalable Automatic Feature Engineering (the paper's method).

    >>> safe = SAFE(SAFEConfig(n_iterations=1))
    >>> transformer = safe.fit(train, valid)
    >>> train_new = transformer.transform(train)
    """

    config: SAFEConfig = field(default_factory=SAFEConfig)
    name: str = "SAFE"

    #: Per-iteration diagnostics populated by :meth:`fit`.
    traces_: list = field(default_factory=list, repr=False)
    #: Fault/degradation bookkeeping of the last :meth:`fit` run.
    runtime_report_: RuntimeReport = field(default_factory=RuntimeReport, repr=False)

    def fit(
        self,
        train: "Dataset | ChunkedDataset",
        valid: "Dataset | None" = None,
        checkpoint_dir: "str | None" = None,
    ) -> FeatureTransformer:
        """Run Algorithm 1; see the module docstring for the stages.

        ``train`` may be a :class:`~repro.tabular.ChunkedDataset`, in
        which case the fit streams the rows chunk-at-a-time at
        O(chunk + state) memory (see :mod:`repro.core.stream`), with
        ``config.sketch`` choosing between bounded-memory approximate
        quantile edges and the bit-identical exact mode. The streaming
        path requires ``valid=None`` and row-wise stateless operators.

        ``checkpoint_dir`` enables fault tolerance across process death:
        after every completed iteration the survivor expressions and
        trace scalars are atomically persisted there, and a *restarted*
        fit pointed at the same directory resumes from the newest valid
        checkpoint whose config/schema fingerprint matches this fit —
        producing the same Ψ as an uninterrupted run (iterations are
        deterministic functions of the restored expressions, the data,
        and the seed). Corrupt or mismatched checkpoints are skipped
        (recorded on :attr:`runtime_report_`), never trusted.
        """
        if isinstance(train, ChunkedDataset):
            from .stream import fit_safe_streaming

            return fit_safe_streaming(
                self, train, valid=valid, checkpoint_dir=checkpoint_dir
            )
        cfg = self.config
        y = train.require_labels()
        if np.unique(y).size < 2:
            raise DataError("SAFE.fit requires both classes in the training labels")
        X_original = train.X
        y_valid = valid.y if valid is not None else None

        max_output = cfg.max_output_features
        if max_output is None:
            max_output = 2 * train.n_cols  # the paper's 2M budget

        expressions: list[Expression] = [Var(i) for i in range(train.n_cols)]
        X_cur = X_original.copy()
        X_valid_cur = valid.X.copy() if valid is not None else None

        # CSE caches: every expression column materialized during
        # generation or candidate evaluation is computed once per matrix
        # and reused across iterations (the matrices never change).
        train_cache = EvalCache(X_original)
        valid_cache = EvalCache(valid.X) if valid is not None else None

        timer = Timer()
        self.traces_ = []
        runtime_report = RuntimeReport()
        self.runtime_report_ = runtime_report
        fingerprint = config_fingerprint(cfg, train.names)
        start_iteration = 0
        manager: "CheckpointManager | None" = None
        if checkpoint_dir is not None:
            manager = CheckpointManager(checkpoint_dir)
            state, skipped = manager.latest(expected_config_hash=fingerprint)
            runtime_report.checkpoints_skipped.extend(skipped)
            if state is not None:
                # Resume: the survivors become the working feature set and
                # their (deterministic) columns are rebuilt through the
                # caches, exactly as iteration `state.iteration` left them.
                expressions = list(state.expressions)
                start_iteration = state.iteration + 1
                runtime_report.resumed_from_iteration = state.iteration
                self.traces_ = [_trace_from_scalars(t) for t in state.traces]
                X_cur = evaluate_forest(expressions, cache=train_cache)
                if valid_cache is not None:
                    X_valid_cur = evaluate_forest(expressions, cache=valid_cache)
        for iteration in range(start_iteration, cfg.n_iterations):
            if (
                cfg.time_budget_seconds is not None
                and timer.elapsed() >= cfg.time_budget_seconds
            ):
                break
            iter_timer = Timer()
            # X_cur / X_valid_cur are private fresh allocations (an
            # explicit .copy() on iteration 0, fancy-indexed survivor
            # slices afterwards), so they too are sanitized in place.
            X_fit = clean_matrix(X_cur, copy=False)
            eval_set = None
            if X_valid_cur is not None and y_valid is not None:
                eval_set = (clean_matrix(X_valid_cur, copy=False), y_valid)

            # -- Generation --------------------------------------------
            mining = fit_mining_model(
                X_fit,
                y,
                eval_set,
                n_estimators=cfg.mining_n_estimators,
                max_depth=cfg.mining_max_depth,
                learning_rate=cfg.mining_learning_rate,
                random_state=cfg.random_state,
            )
            paths = mining.paths()
            combos = combinations_from_paths(
                paths, max_size=cfg.max_combination_size
            )
            ranked = rank_combinations(
                X_fit, y, combos, gamma=cfg.gamma, n_jobs=cfg.n_jobs
            )
            existing = {e.key for e in expressions}
            quarantined: "list[QuarantineRecord] | None" = (
                [] if cfg.on_operator_error == "quarantine" else None
            )
            new_exprs = generate_features(
                ranked,
                cfg.operators,
                expressions,
                X_original,
                existing_keys=existing,
                cache=train_cache,
                n_jobs=cfg.n_jobs,
                quarantine=quarantined,
            )
            if quarantined:
                runtime_report.record_quarantine(iteration, quarantined)
            if not new_exprs and iteration > 0:
                break  # nothing new to add; feature set has stabilized

            # -- Candidate pool (line 7) --------------------------------
            if cfg.keep_originals or not new_exprs:
                candidates = list(expressions) + new_exprs
            else:
                candidates = new_exprs
            # evaluate_forest fills a freshly allocated block (cached
            # columns are copied into it), so in-place sanitation is safe
            # and saves one full-matrix copy per iteration per matrix.
            X_cand = clean_matrix(
                evaluate_forest(candidates, cache=train_cache), copy=False
            )
            eval_cand = None
            if valid_cache is not None and y_valid is not None:
                eval_cand = (
                    clean_matrix(
                        evaluate_forest(candidates, cache=valid_cache), copy=False
                    ),
                    y_valid,
                )

            # -- Selection (lines 8-10) ---------------------------------
            report = select_features(
                X_cand,
                y,
                eval_cand,
                alpha=cfg.iv_threshold,
                iv_bins=cfg.iv_bins,
                theta=cfg.pearson_threshold,
                ranking_n_estimators=cfg.ranking_n_estimators,
                ranking_max_depth=cfg.ranking_max_depth,
                max_output=max_output,
                random_state=cfg.random_state,
                n_jobs=cfg.n_jobs,
            )
            chosen = list(report.final_order)
            if not chosen:
                break
            expressions = [candidates[i] for i in chosen]
            X_cur = X_cand[:, chosen]
            if eval_cand is not None:
                X_valid_cur = eval_cand[0][:, chosen]
            # Bound cache memory: keep only subtrees the survivors reuse.
            train_cache.retain(expressions)
            if valid_cache is not None:
                valid_cache.retain(expressions)
            self.traces_.append(
                IterationTrace(
                    iteration=iteration,
                    n_paths=len(paths),
                    n_combinations=len(combos),
                    n_generated=len(new_exprs),
                    n_candidates=len(candidates),
                    selection=report,
                    elapsed_seconds=iter_timer.elapsed(),
                    n_quarantined=len(quarantined) if quarantined else 0,
                )
            )
            if manager is not None:
                manager.save(
                    iteration,
                    expressions,
                    fingerprint,
                    traces=[_trace_scalars(t) for t in self.traces_],
                )
                runtime_report.checkpoints_written += 1
            # Chaos hook: lets tests kill the fit between iterations (after
            # the checkpoint landed) and assert a clean resume.
            failpoint("pipeline.iteration")

        return FeatureTransformer(
            expressions=tuple(expressions),
            original_names=train.names,
            metadata={
                "method": self.name,
                "n_iterations_run": len(self.traces_),
                "operators": list(cfg.operators),
                "schema_hash": schema_fingerprint(train.names),
                "config_hash": fingerprint,
            },
        )
