"""Feature selection stage (§IV-C): IV filter, redundancy removal, ranking.

Three computationally-cheap stages, applied in order:

1. :func:`filter_by_information_value` — Algorithm 3. Features whose IV
   (Eq. 6, β equal-frequency bins) does not exceed α are dropped; the
   default α = 0.1 keeps "medium" predictors and above (Table I). One
   batched matrix kernel scores every column at once
   (:func:`repro.metrics.batched.information_values_matrix`).
2. :func:`remove_redundant_features` — Algorithm 4 with the intended
   semantics (see DESIGN.md): process features in decreasing IV order and
   keep a feature iff its |Pearson| with every already-kept feature is
   below θ = 0.8, so the higher-IV member of each correlated pair wins.
   Runs on the blocked incremental Gram kernel
   (:mod:`repro.core.redundancy`): candidate columns are standardized
   once, visited in decreasing-IV blocks, and correlated only against the
   growing kept panel via BLAS matmuls — O(k * |kept| * n) time and
   O((block + |kept|) * n) memory instead of the full-matrix greedy's
   O(k^2 * n) time and O(k^2) memory, with identical kept indices.
3. :func:`rank_by_importance` — order survivors by the ranking GBM's
   average split gain and truncate to the output budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..boosting.gbm import GradientBoostingClassifier
from ..boosting.tree import GAIN_TIE_RTOL
from ..exceptions import DataError
from ..metrics.information import information_values
from ..runtime.failpoints import failpoint
from .redundancy import DEFAULT_BLOCK_SIZE, remove_redundant_features_blocked


@dataclass(frozen=True)
class SelectionReport:
    """Bookkeeping of one pass through the three selection stages."""

    n_candidates: int
    kept_after_iv: tuple[int, ...]
    kept_after_redundancy: tuple[int, ...]
    final_order: tuple[int, ...]
    information_values: tuple[float, ...]


def information_values_safe(X: np.ndarray, y: np.ndarray, n_bins: int) -> np.ndarray:
    """Per-column IV; columns that cannot be scored (constant) get 0.

    Alias of :func:`repro.metrics.information_values`, which is the one
    guarded implementation (batched matrix kernel) shared by the metrics
    API and this selection stage.
    """
    return information_values(X, y, n_bins=n_bins)


def filter_by_information_value(
    X: np.ndarray,
    y: np.ndarray,
    alpha: float,
    n_bins: int,
    min_keep: int = 1,
    n_jobs: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 3: keep columns with ``IV > alpha``.

    Returns ``(kept_indices, ivs_of_all_columns)``. If the threshold would
    empty the pool the top ``min_keep`` columns by IV are retained instead
    (the deployed system must always emit *some* features). ``n_jobs``
    fans the per-column IV computation across processes (§IV-E.2).
    """
    if X.ndim != 2 or X.shape[1] == 0:
        raise DataError("filter_by_information_value expects a non-empty matrix")
    if n_jobs != 1:
        from ..parallel import parallel_information_values

        ivs = parallel_information_values(X, y, n_bins, n_jobs=n_jobs)
    else:
        ivs = information_values_safe(X, y, n_bins)
    kept = np.flatnonzero(ivs > alpha)
    if kept.size < min_keep:
        kept = np.argsort(-ivs)[:min_keep]
        kept.sort()
    return kept, ivs


def remove_redundant_features(
    X: np.ndarray,
    ivs: np.ndarray,
    theta: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
    n_jobs: int = 1,
) -> np.ndarray:
    """Algorithm 4 (intended semantics): greedy de-correlation by IV.

    Features are visited in decreasing IV order; a feature is kept iff its
    absolute Pearson correlation with every feature kept so far is at most
    ``theta``. Ties in IV break by column order for determinism.

    Runs on the blocked incremental kernel
    (:func:`repro.core.redundancy.remove_redundant_features_blocked`),
    which never materializes the k x k correlation matrix but returns the
    exact kept set the full-matrix greedy would.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] != np.asarray(ivs).ravel().size:
        raise DataError("ivs length must match number of columns")
    return remove_redundant_features_blocked(
        X, ivs, theta, block_size=block_size, n_jobs=n_jobs
    )


def rank_by_importance(
    X: np.ndarray,
    y: np.ndarray,
    eval_set: "tuple[np.ndarray, np.ndarray] | None",
    n_estimators: int,
    max_depth: int,
    top_k: "int | None",
    random_state: "int | None",
) -> np.ndarray:
    """Stage 3: order columns by GBM average split gain, truncate to top_k.

    Columns the model never split on inherit importance 0 and sort last;
    ties break by column order. Returns column indices, best first.
    """
    model = GradientBoostingClassifier(
        n_estimators=n_estimators,
        max_depth=max_depth,
        random_state=random_state,
        tie_rtol=GAIN_TIE_RTOL,
    )
    model.fit(X, y, eval_set=eval_set)
    importance = model.feature_importances_
    order = np.lexsort((np.arange(importance.size), -importance))
    if top_k is not None:
        order = order[:top_k]
    return order


def select_features(
    X: np.ndarray,
    y: np.ndarray,
    eval_set: "tuple[np.ndarray, np.ndarray] | None",
    alpha: float,
    iv_bins: int,
    theta: float,
    ranking_n_estimators: int,
    ranking_max_depth: int,
    max_output: "int | None",
    random_state: "int | None",
    n_jobs: int = 1,
) -> SelectionReport:
    """Run the full three-stage pipeline; returns indices into ``X``."""
    # Chaos hook: lets tests kill a fit inside the selection stage.
    failpoint("selection.select")
    kept_iv, ivs = filter_by_information_value(X, y, alpha, iv_bins, n_jobs=n_jobs)
    # The blocked kernel gathers candidate columns straight from X one
    # block at a time, so the IV survivors are never fancy-index copied
    # as a whole; the only full gather left is the (much smaller)
    # redundancy-survivor matrix the ranking GBM actually fits on.
    # n_jobs is deliberately not forwarded here: the kernel's hot loop is
    # one in-process (BLAS-threaded) GEMM per block, which beats shipping
    # the kept panel to a process pool; the explicit
    # remove_redundant_features_blocked(..., n_jobs=) path remains for
    # deployments that pin BLAS to one thread per worker.
    kept_red = remove_redundant_features_blocked(
        X, ivs[kept_iv], theta, columns=kept_iv
    )
    sub2 = X[:, kept_red]
    eval_sub = None
    if eval_set is not None:
        eval_sub = (eval_set[0][:, kept_red], eval_set[1])
    order_local = rank_by_importance(
        sub2,
        y,
        eval_sub,
        n_estimators=ranking_n_estimators,
        max_depth=ranking_max_depth,
        top_k=max_output,
        random_state=random_state,
    )
    final = kept_red[order_local]
    return SelectionReport(
        n_candidates=X.shape[1],
        kept_after_iv=tuple(int(i) for i in kept_iv),
        kept_after_redundancy=tuple(int(i) for i in kept_red),
        final_order=tuple(int(i) for i in final),
        information_values=tuple(float(v) for v in ivs),
    )
