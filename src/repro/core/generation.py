"""Feature generation stage (§IV-B): mine, rank, and apply.

Three steps, mirroring the paper exactly:

1. **Mine feature combination relations** — train the small XGBoost-style
   model, read off every root→leaf-parent path, and form candidate
   combinations from the distinct split features on each path (subsets of
   size 1..``max_combination_size``). Combinations recurring on several
   paths are merged, pooling their split values.
2. **Sort feature combinations** (Algorithm 2) — partition training rows
   by each combination's split values and rank combinations by the
   information gain ratio of the induced partition; keep the top γ.
3. **Generate features** — apply each operator of matching arity to each
   surviving combination. Non-commutative operators are applied to every
   ordered arrangement (the paper treats ``÷`` as multiple operators).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations as iter_combinations
from itertools import permutations as iter_permutations

import numpy as np

from ..boosting.gbm import GradientBoostingClassifier
from ..boosting.tree import GAIN_TIE_RTOL, TreePath
from ..operators.base import Operator, resolve_operators
from ..operators.engine import EvalCache, batch_populate_cache
from ..operators.expressions import Applied, Expression
from ..runtime.failpoints import failpoint
from ..runtime.report import QuarantineRecord


@dataclass(frozen=True)
class Combination:
    """A candidate feature combination with pooled split values.

    ``features`` holds *current-iteration* column indices (sorted);
    ``split_values[f]`` pools every split value observed for feature ``f``
    across all paths that contained this combination.
    """

    features: tuple[int, ...]
    split_values: tuple[tuple[float, ...], ...]

    @property
    def size(self) -> int:
        return len(self.features)


@dataclass(frozen=True)
class RankedCombination:
    """A combination together with its Algorithm 2 score."""

    combination: Combination
    gain_ratio: float


def fit_mining_model(
    X: np.ndarray,
    y: np.ndarray,
    eval_set: "tuple[np.ndarray, np.ndarray] | None",
    n_estimators: int,
    max_depth: int,
    learning_rate: float,
    random_state: "int | None",
) -> GradientBoostingClassifier:
    """Train the path-mining GBM (Algorithm 1 line 3)."""
    model = GradientBoostingClassifier(
        n_estimators=n_estimators,
        max_depth=max_depth,
        learning_rate=learning_rate,
        random_state=random_state,
        tie_rtol=GAIN_TIE_RTOL,
    )
    model.fit(X, y, eval_set=eval_set)
    return model


def combinations_from_paths(
    paths: "list[TreePath]",
    max_size: int = 2,
) -> list[Combination]:
    """Form merged candidate combinations from tree paths (line 4).

    Every subset (size 1..``max_size``) of each path's distinct split
    features is a candidate; identical subsets from different paths are
    merged by pooling split values, which is why the realized search space
    is far below the worst case of Eq. (5).
    """
    pooled: dict[tuple[int, ...], dict[int, set[float]]] = {}
    for path in paths:
        feats = path.features
        for size in range(1, min(max_size, len(feats)) + 1):
            for subset in iter_combinations(sorted(feats), size):
                store = pooled.setdefault(subset, {f: set() for f in subset})
                for f in subset:
                    store[f].update(path.split_values.get(f, ()))
    out = []
    for subset, values in sorted(pooled.items()):
        out.append(
            Combination(
                features=subset,
                split_values=tuple(
                    tuple(sorted(values[f])) for f in subset
                ),
            )
        )
    return out


def rank_combinations(
    X: np.ndarray,
    y: np.ndarray,
    combos: "list[Combination]",
    gamma: int,
    n_jobs: int = 1,
) -> list[RankedCombination]:
    """Algorithm 2: score each combination by information gain ratio.

    Rows are partitioned into ``prod_f (|V_f| + 1)`` cells by the pooled
    split values; the top-γ combinations by gain ratio survive.

    Scoring runs on the batched engine (``core.scoring``): each feature's
    pooled split values are quantized once and shared by every
    combination containing it, and entropy/gain come from vectorized
    histogram kernels. ``n_jobs > 1`` chunks the *combinations* across
    worker processes. Results are identical to the scalar
    ``cells_from_split_values`` + ``information_gain_ratio`` reference.
    """
    kept = [c for c in combos if c.features]
    if not kept:
        return []
    if n_jobs != 1 and len(kept) > 1:
        from ..parallel import parallel_score_combinations

        ratios = parallel_score_combinations(X, y, kept, n_jobs=n_jobs)
    else:
        from .scoring import score_combinations

        ratios = score_combinations(X, y, kept)
    return rank_from_scores(kept, ratios, gamma)


def rank_from_scores(
    combos: "list[Combination]",
    ratios: np.ndarray,
    gamma: int,
) -> list[RankedCombination]:
    """Order scored combinations and keep the top γ (Algorithm 2's tail).

    Shared by :func:`rank_combinations` and the streaming fit (whose
    ratios come from merged chunk partials): descending gain ratio, ties
    broken by the feature tuple for determinism.
    """
    scored = [
        RankedCombination(combination=combo, gain_ratio=float(ratio))
        for combo, ratio in zip(combos, ratios)
    ]
    scored.sort(key=lambda r: (-r.gain_ratio, r.combination.features))
    return scored[:gamma]


def _arrangements(features: tuple[int, ...], op: Operator) -> "list[tuple[int, ...]]":
    """Argument orders to try: one for commutative ops, all otherwise."""
    if op.commutative or len(features) == 1:
        return [features]
    return [p for p in iter_permutations(features)]


def plan_features(
    ranked: "list[RankedCombination]",
    operator_names: "tuple[str, ...]",
    base_expressions: "list[Expression]",
    existing_keys: "set[str]",
) -> "list[tuple[Operator, tuple[Expression, ...]]]":
    """Enumerate the (operator, children) slots generation will fill.

    Pass 1 of :func:`generate_features`, exposed on its own because the
    streaming fit needs the plan *before* any column exists: slots come
    out in the exact nested order of the scalar reference (combination →
    operator → arrangement), deduplicated by canonical key against
    ``existing_keys`` (which is copied, never mutated) and against
    earlier slots. Evaluation and quarantine screening happen elsewhere.
    """
    operators = resolve_operators(operator_names)
    by_arity: dict[int, list[Operator]] = {}
    for op in operators:
        by_arity.setdefault(op.arity, []).append(op)
    seen = set(existing_keys)
    plan: list[tuple[Operator, tuple[Expression, ...]]] = []
    for item in ranked:
        combo = item.combination
        for op in by_arity.get(combo.size, []):
            for arrangement in _arrangements(combo.features, op):
                children = tuple(base_expressions[f] for f in arrangement)
                key = op.format(*(c.key for c in children))
                if key in seen:
                    continue
                seen.add(key)
                plan.append((op, children))
    return plan


def generate_features(
    ranked: "list[RankedCombination]",
    operator_names: "tuple[str, ...]",
    base_expressions: "list[Expression]",
    X_original: np.ndarray,
    existing_keys: "set[str]",
    cache: "EvalCache | None" = None,
    n_jobs: int = 1,
    quarantine: "list[QuarantineRecord] | None" = None,
) -> list[Expression]:
    """Apply operators to ranked combinations (line 6).

    ``base_expressions[i]`` is the expression behind current column ``i``
    (a bare :class:`Var` in iteration 0), so chained iterations compose
    expressions over *original* columns, keeping Ψ serving-ready.
    Stateful operators are fitted on ``X_original`` here. Duplicate
    expressions (same canonical key, including anything already in
    ``existing_keys``) are skipped.

    Evaluation runs on the batched engine: each surviving combination's
    child columns are gathered once from ``cache`` (an
    :class:`~repro.operators.engine.EvalCache` over ``X_original``;
    created here if not supplied, pass the pipeline's to reuse the
    columns downstream), and every stateless batchable operator is
    applied as one vectorized kernel over the ``(n, m)`` block of all its
    arrangements, with the resulting columns stored back into the cache.
    Stateful operators keep their audited per-expression ``fit`` but draw
    child columns from the cache. Output expressions and columns are
    bit-identical to the scalar ``fit_applied`` reference path.

    ``n_jobs > 1`` chunks the ranked combinations across worker
    processes (see :func:`repro.parallel.parallel_generate_features`);
    the supplied ``cache`` is then repopulated in the parent with one
    batched kernel pass over the merged result, so downstream forest
    evaluation still reuses vectorized columns.

    ``quarantine``: pass a list to enable expression quarantine — an
    operator that raises, or whose column comes back with *no* finite
    value, is dropped from the output (one
    :class:`~repro.runtime.QuarantineRecord` appended per casualty) and
    generation continues, instead of the fault aborting the whole fit.
    With ``quarantine=None`` (the default, and the baselines' path)
    operator faults propagate exactly as before. On a fault-free run
    both modes return identical expressions with identical cached
    columns.
    """
    if n_jobs != 1 and len(ranked) > 1:
        from ..parallel import parallel_generate_features, resolve_n_jobs

        if resolve_n_jobs(n_jobs) > 1:
            out = parallel_generate_features(
                ranked, operator_names, base_expressions, X_original,
                existing_keys, n_jobs=n_jobs, quarantine=quarantine,
            )
            if cache is not None:
                batch_populate_cache(cache, out)
            return out
        # n_jobs resolved to one worker: use the serial path (and cache).
    if cache is None:
        cache = EvalCache(X_original)

    # Pass 1: enumerate output slots in the exact nested order of the
    # scalar reference (combo -> operator -> arrangement), deduping by
    # canonical key before any evaluation happens.
    plan = plan_features(ranked, operator_names, base_expressions, existing_keys)

    if quarantine is not None:
        return _generate_with_quarantine(plan, cache, quarantine)

    # Chaos hook: in strict mode (quarantine=None) a planned expression's
    # fault aborts the fit. Fires once per planned expression so nth:K
    # targets the same expression in either mode.
    for _ in plan:
        failpoint("generation.operator")

    # Pass 2: vectorized kernels — every stateless operator is applied
    # once to the stacked (n, m) block of all its arrangements, columns
    # stored back into the cache.
    exprs: "list[Expression | None]" = [
        None if op.is_stateful else Applied(op.name, children, None)
        for op, children in plan
    ]
    batch_populate_cache(cache, [e for e in exprs if e is not None])

    # Pass 3: stateful operators — audited per-expression fit, child
    # columns drawn from the cache instead of re-evaluating the trees.
    for i, (op, children) in enumerate(plan):
        if exprs[i] is None:
            state = op.fit(*(cache.column(c) for c in children))
            exprs[i] = Applied(op.name, children, state)
    return [e for e in exprs if e is not None]


def _generate_with_quarantine(
    plan: "list[tuple[Operator, tuple[Expression, ...]]]",
    cache: EvalCache,
    quarantine: "list[QuarantineRecord]",
) -> list[Expression]:
    """Fault-isolating variant of generation passes 2 and 3.

    Stateless batchable operators still take the one-kernel-per-operator
    fast path; if a batched call blows up, the whole group silently drops
    to the per-expression loop below where the *individual* failing
    expressions are identified and quarantined (and the healthy ones
    still produced). Every planned expression is then materialized once
    through the cache — the same columns the batch pass stored, so a
    fault-free run is bit-identical to the non-quarantine path — and
    screened: a raise or an all-non-finite column removes the expression
    from this iteration instead of aborting the fit. The
    ``generation.operator`` failpoint fires once per planned expression.
    """
    stateless = [
        Applied(op.name, children, None)
        for op, children in plan
        if not op.is_stateful
    ]
    try:
        batch_populate_cache(cache, stateless)
    except Exception:  # repro: ignore[except-swallow] failures re-surface per-expression below
        pass

    out: "list[Expression]" = []
    for op, children in plan:
        key = op.format(*(c.key for c in children))
        try:
            failpoint("generation.operator")
            if op.is_stateful:
                state = op.fit(*(cache.column(c) for c in children))
                expr: Expression = Applied(op.name, children, state)
            else:
                expr = Applied(op.name, children, None)
            column = cache.column(expr)
        except Exception as exc:
            quarantine.append(
                QuarantineRecord(key=key, operator=op.name, reason=repr(exc))
            )
            continue
        if column.size and not np.isfinite(column).any():
            quarantine.append(
                QuarantineRecord(
                    key=key,
                    operator=op.name,
                    reason="column is entirely non-finite",
                )
            )
            continue
        out.append(expr)
    return out


def search_space_size(n_features: int, operator_counts: "dict[int, int]") -> float:
    """Exhaustive search-space size T of Eq. (3) (ordered subsets × ops)."""
    total = 0.0
    for arity, n_ops in operator_counts.items():
        if arity > n_features:
            continue
        arrangements = 1.0
        for k in range(arity):
            arrangements *= n_features - k
        total += arrangements * n_ops
    return total


def mined_search_space_size(
    paths: "list[TreePath]",
    operator_counts: "dict[int, int]",
) -> float:
    """Path-restricted search-space bound T* of Eq. (5)."""
    total = 0.0
    for path in paths:
        p = len(path)
        for arity, n_ops in operator_counts.items():
            if arity > p:
                continue
            arrangements = 1.0
            for k in range(arity):
                arrangements *= p - k
            total += arrangements * n_ops
    return total
