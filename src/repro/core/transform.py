"""The fitted feature-generation function Ψ.

:class:`FeatureTransformer` is what :meth:`repro.core.SAFE.fit` returns:
an ordered list of expressions over the *original* columns. It satisfies
the paper's three industrial requirements directly:

* **real-time inference** — ``transform`` accepts a single row (1-D array)
  or a matrix and evaluates expressions without refitting anything;
* **interpretability** — ``feature_names`` renders each output as a
  readable formula over the original column names;
* **deployability** — ``save``/``load`` round-trip the whole plan through
  a JSON file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..exceptions import (
    ConfigurationError,
    DataError,
    PlanVersionError,
    ReproError,
    SchemaError,
)
from ..operators.engine import EvalCache, evaluate_forest
from ..operators.expressions import (
    Expression,
    Var,
    expression_from_dict,
)
from ..runtime.checkpoint import schema_fingerprint
from ..runtime.failpoints import failpoint
from ..tabular.dataset import Dataset
from ..utils import atomic_write

#: Plan-file format version this library writes and the newest it reads.
#: Bump when ``to_dict`` gains fields whose *absence* on read would change
#: serving behavior; readers reject anything newer (see
#: :meth:`FeatureTransformer.from_dict`).
PLAN_FORMAT_VERSION = 1


def _check_format_version(payload: dict, source: str = "plan") -> None:
    """Reject payloads written by a newer library than this one.

    Plans saved before versioning carry no ``format_version`` key and are
    read as version 1; anything above :data:`PLAN_FORMAT_VERSION` raises
    :class:`~repro.exceptions.PlanVersionError` — a newer writer may have
    recorded semantics this reader would silently drop.
    """
    version = payload.get("format_version", 1)
    if isinstance(version, bool) or not isinstance(version, int):
        raise SchemaError(
            f"{source} has a non-integer format_version: {version!r}"
        )
    if version > PLAN_FORMAT_VERSION:
        raise PlanVersionError(
            f"{source} has format_version {version}, but this library "
            f"supports at most {PLAN_FORMAT_VERSION}; upgrade the library "
            "to serve this plan"
        )


@dataclass(frozen=True)
class FeatureTransformer:
    """Ψ: a fitted, serializable feature-generation plan.

    Attributes
    ----------
    expressions:
        Output features in rank order (best first), each an
        :class:`~repro.operators.Expression` over original columns.
    original_names:
        Column names of the original training schema; transform inputs
        must match this width.
    """

    expressions: tuple[Expression, ...]
    original_names: tuple[str, ...]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.expressions:
            raise DataError("FeatureTransformer needs at least one expression")
        width = len(self.original_names)
        for expr in self.expressions:
            bad = [i for i in expr.original_indices() if not 0 <= i < width]
            if bad:
                raise SchemaError(
                    f"expression {expr.key} references missing columns {bad}"
                )
        self._verify_schema_hash()

    def _verify_schema_hash(self) -> None:
        """Check the fit-time schema hash against ``original_names``.

        Plans fitted by :class:`~repro.core.SAFE` carry
        ``metadata["schema_hash"]``; a mismatch means the plan's column
        schema was altered after fit (hand-edited JSON, a bad merge) and
        serving it would silently bind expressions to the wrong columns.
        Plans without the key (pre-hash saves, hand-built transformers)
        are accepted unchanged.
        """
        stored = None
        if isinstance(self.metadata, dict):
            stored = self.metadata.get("schema_hash")
        if stored is not None and stored != schema_fingerprint(self.original_names):
            raise SchemaError(
                "schema hash mismatch: this plan's original_names were "
                "modified after fit; refusing to serve it"
            )

    # ------------------------------------------------------------------
    @property
    def n_output_features(self) -> int:
        return len(self.expressions)

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Readable formulas, e.g. ``('(amount / count)', 'age', ...)``."""
        return tuple(e.name(self.original_names) for e in self.expressions)

    @property
    def feature_keys(self) -> tuple[str, ...]:
        """Canonical identity strings (``x{i}`` placeholders), for dedup."""
        return tuple(e.key for e in self.expressions)

    def generated_expressions(self) -> tuple[Expression, ...]:
        """The subset of outputs that are not bare original columns."""
        return tuple(e for e in self.expressions if not isinstance(e, Var))

    # ------------------------------------------------------------------
    def transform_matrix(
        self, X: np.ndarray, errors: str = "raise"
    ) -> np.ndarray:
        """Raw-matrix variant of :meth:`transform` (accepts a single row).

        ``errors`` selects the serving failure mode:

        * ``"raise"`` (default) — a failing expression propagates, as
          before (bit-identical fast path through the batched engine);
        * ``"null"`` — each expression is evaluated in isolation (shared
          subtrees still cached once) and a failing one yields a NaN
          column, so one pathological request degrades one feature
          instead of turning the whole scoring call into a 500.
        """
        if errors not in ("raise", "null"):
            raise ConfigurationError(
                f"errors must be 'raise' or 'null', got {errors!r}"
            )
        X = np.asarray(X, dtype=np.float64)
        single = X.ndim == 1
        if single:
            X = X.reshape(1, -1)
        if X.shape[1] != len(self.original_names):
            raise SchemaError(
                f"input has {X.shape[1]} columns, transformer expects "
                f"{len(self.original_names)}"
            )
        self._verify_schema_hash()
        if errors == "raise":
            # Chaos hook: fail the whole call, as an unhandled operator
            # fault would.
            failpoint("transform.evaluate")
            # CSE engine: shared subtrees across the plan's expressions
            # are evaluated once per call (bit-identical to the scalar
            # reference).
            out = evaluate_forest(list(self.expressions), X)
            return out[0] if single else out
        cache = EvalCache(X)
        out = np.empty(
            (X.shape[0], len(self.expressions)), dtype=np.float64, order="F"
        )
        for j, expr in enumerate(self.expressions):
            try:
                # Chaos hook: fires once per expression under errors="null".
                failpoint("transform.evaluate")
                out[:, j] = cache.column(expr)
            except Exception:  # repro: ignore[except-swallow] degraded serving: the NaN column is the record
                out[:, j] = np.nan
        return out[0] if single else out

    def transform(
        self, data: "Dataset | np.ndarray", errors: str = "raise"
    ) -> "Dataset | np.ndarray":
        """Apply Ψ; Dataset in → Dataset out (labels preserved).

        ``errors="null"`` serves degraded instead of failing: expressions
        that raise produce NaN columns (see :meth:`transform_matrix`).
        """
        if isinstance(data, Dataset):
            if data.names != self.original_names:
                raise SchemaError(
                    "dataset columns do not match the transformer's schema"
                )
            block = self.transform_matrix(data.X, errors=errors)
            return Dataset(X=block, names=self._output_names(), y=data.y)
        return self.transform_matrix(data, errors=errors)

    def _output_names(self) -> tuple[str, ...]:
        """Unique output column names (formulas, deduped if ever needed).

        First occurrences keep their formula verbatim; later duplicates
        get a ``#k`` suffix. A candidate suffix is skipped when it would
        collide with any *literal* formula (e.g. a duplicate of ``foo``
        must not be renamed to ``foo#1`` if some column's formula already
        reads ``foo#1``) or with a name already emitted.
        """
        names = list(self.feature_names)
        literal = set(names)
        used: set[str] = set()
        next_suffix: dict[str, int] = {}
        out: list[str] = []
        for name in names:
            if name not in used:
                out.append(name)
                used.add(name)
                continue
            k = next_suffix.get(name, 1)
            while True:
                candidate = f"{name}#{k}"
                k += 1
                if candidate not in used and candidate not in literal:
                    break
            next_suffix[name] = k
            out.append(candidate)
            used.add(candidate)
        return tuple(out)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format_version": PLAN_FORMAT_VERSION,
            "original_names": list(self.original_names),
            "expressions": [e.to_dict() for e in self.expressions],
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FeatureTransformer":
        _check_format_version(payload)
        return cls(
            expressions=tuple(
                expression_from_dict(e) for e in payload["expressions"]
            ),
            original_names=tuple(payload["original_names"]),
            metadata=dict(payload.get("metadata", {})),
        )

    def save(self, path: "str | Path") -> None:
        with atomic_write(path) as fh:
            fh.write(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: "str | Path") -> "FeatureTransformer":
        """Load a plan, wrapping file/format faults into :class:`ReproError`.

        A missing/unreadable file or invalid JSON raises
        :class:`~repro.exceptions.DataError`; a structurally broken plan
        (missing keys, wrong shapes) raises
        :class:`~repro.exceptions.SchemaError`. Both carry the file path,
        so serving code can log one actionable line instead of a raw
        ``KeyError`` deep inside deserialization.
        """
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise DataError(f"cannot read plan file {path}: {exc}") from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DataError(f"plan file {path} is not valid JSON: {exc}") from exc
        try:
            return cls.from_dict(payload)
        except PlanVersionError as exc:
            raise PlanVersionError(f"plan file {path}: {exc}") from exc
        except ReproError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise SchemaError(
                f"plan file {path} is malformed: {type(exc).__name__}: {exc}"
            ) from exc

    def describe(self) -> str:
        """Multi-line human-readable summary of the plan."""
        lines = [f"FeatureTransformer: {self.n_output_features} features"]
        for rank, name in enumerate(self.feature_names):
            lines.append(f"  [{rank}] {name}")
        return "\n".join(lines)
