"""Shared quantization cache for batched Algorithm 2 scoring.

Ranking feature combinations (Algorithm 2) partitions the training rows
once per combination. The scalar path re-runs ``np.searchsorted`` for
every (combination, feature) pair even though a feature typically appears
in many combinations. :class:`IntervalCodeCache` removes that redundancy:

* each feature's **pooled** split values (the union over every combination
  that contains it) are sorted and ``searchsorted`` against the column
  exactly once, producing *fine* interval codes;
* a combination's own split-value set is a subset of that union, so its
  *coarse* interval codes are a pure table lookup — ``lut[fine]`` where
  ``lut[c]`` counts the combination's values below fine interval ``c``;
* mixed-radix composition (``cell += stride * coarse``; ``stride *=
  |V_f| + 1``) then yields the same cell ids as the scalar
  :func:`~..metrics.information.cells_from_split_values`, bit for bit.

:func:`score_combinations` wires the cache into the vectorized
gain-ratio kernel, giving the batched ranking engine used by
``rank_combinations`` and the combination-chunked parallel path.
"""

from __future__ import annotations

import numpy as np

from ..analysis.registry import batched_kernel, chunk_mergeable, kernel_exempt
from ..exceptions import ConfigurationError
from ..metrics.batched import (
    _DENSE_CELL_FACTOR,
    _DENSE_CELL_FLOOR,
    gain_ratio_from_counts,
)
from ..metrics.information import entropy


class IntervalCodeCache:
    """Per-feature interval codes, computed once and shared.

    Parameters
    ----------
    X:
        The training matrix combinations are scored against.
    combos:
        The combinations whose features/split values will be requested;
        used to pool each feature's split-value union up front.
    label:
        Optional 0/1 vector (one per row). When given, it is folded into
        the stored fine codes as the lowest bit, so scoring kernels get
        label-interleaved codes for free (lookup tables carry or drop the
        bit as requested) — the label becomes just another radix digit.
    """

    def __init__(self, X: np.ndarray, combos, label: "np.ndarray | None" = None) -> None:
        self._X = np.asarray(X, dtype=np.float64)
        if self._X.ndim != 2:
            raise ConfigurationError("IntervalCodeCache expects a 2-D matrix")
        # Row-major transpose: searchsorted over a contiguous column is
        # several times faster than over a strided column view.
        self._XT = np.ascontiguousarray(self._X.T)
        self._label = None
        if label is not None:
            self._label = np.asarray(label).ravel().astype(np.int64)
            if self._label.size != self._X.shape[0]:
                raise ConfigurationError("label length must match X rows")
        pooled: dict[int, list] = {}
        for combo in combos:
            for f, values in zip(combo.features, combo.split_values):
                pooled.setdefault(int(f), []).append(
                    np.asarray(values, dtype=np.float64).ravel()
                )
        self._union: dict[int, np.ndarray] = {}
        self._fine: dict[int, np.ndarray] = {}
        for f, chunks in pooled.items():
            union = np.unique(np.concatenate(chunks)) if chunks else np.empty(0)
            self._union[f] = union
            self._fine[f] = self._fine_codes(f, union)

    def _fine_codes(self, f: int, union: np.ndarray) -> np.ndarray:
        codes = np.searchsorted(union, self._XT[f], side="left").astype(np.int64)
        if self._label is not None:
            codes *= 2
            codes += self._label
        return codes

    def _lut(self, f: int, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(fine_codes, lut)`` mapping stored fine codes to coarse codes.

        ``lut`` is indexed by the *plain* fine interval (label bit not
        included); callers expand it when the cache carries a label.
        """
        if f not in self._union:
            # Feature unseen at construction: admit it with these values
            # as its (so far) whole union.
            self._union[f] = values
            self._fine[f] = self._fine_codes(f, values)
        union = self._union[f]
        fine = self._fine[f]
        if values.size == union.size:
            if not np.array_equal(values, union):
                raise ConfigurationError(
                    f"split values for feature {f} are not a subset of the "
                    "pooled union this cache was built from"
                )
            # The union *is* this combination's value set — fine == coarse.
            lut = np.arange(union.size + 1, dtype=np.int64)
        else:
            # values ⊆ union, both sorted & distinct, so positions are
            # exact; lut[c] = |{v in values : v < union interval c}| turns
            # fine codes into coarse codes with one O(n) take instead of
            # a fresh searchsorted over the rows. Both arrays are tiny, so
            # validating the subset assumption here is effectively free.
            positions = np.searchsorted(union, values, side="left")
            if (positions >= union.size).any() or not np.array_equal(
                union[np.minimum(positions, union.size - 1)], values
            ):
                raise ConfigurationError(
                    f"split values for feature {f} are not a subset of the "
                    "pooled union this cache was built from"
                )
            lut = np.searchsorted(
                positions, np.arange(union.size + 1), side="left"
            ).astype(np.int64)
        return fine, lut

    def _take(self, fine, lut, scale: int, include_label: bool) -> np.ndarray:
        """Gather ``scale * lut[...]`` per row, carrying the label bit if asked."""
        if self._label is None:
            if include_label:
                raise ConfigurationError(
                    "cache built without a label cannot emit labeled digits"
                )
            return (lut * scale)[fine]
        # Stored fine codes are 2*interval + label_bit: expand the tiny
        # lut to index them directly, optionally re-emitting the bit.
        expanded = np.repeat(lut * scale, 2)
        if include_label:
            expanded[1::2] += 1
        return expanded[fine]

    def interval_codes(self, f: int, values) -> tuple[np.ndarray, int]:
        """Interval code per row for feature ``f`` and split values ``values``.

        Returns ``(codes, n_values)`` where ``codes[i] ==
        searchsorted(unique(values), X[i, f], side='left')`` and
        ``n_values`` is the number of distinct split values (so the
        feature contributes ``n_values + 1`` intervals).
        """
        values = np.unique(np.asarray(values, dtype=np.float64).ravel())
        fine, lut = self._lut(int(f), values)
        return self._take(fine, lut, 1, include_label=False), int(values.size)

    def digit(
        self, f: int, values, scale: int, include_label: bool = False
    ) -> tuple[np.ndarray, int]:
        """One pre-scaled mixed-radix digit: ``scale * coarse_code`` per row.

        Scaling the tiny lookup table *before* the per-row take folds the
        stride multiplication into the same memory pass, so composing a
        combination's cells costs one take plus one add per feature.
        ``include_label`` additionally emits the cached label as the
        lowest bit (requires a label-built cache).
        """
        values = np.unique(np.asarray(values, dtype=np.float64).ravel())
        fine, lut = self._lut(int(f), values)
        return self._take(fine, lut, scale, include_label), int(values.size)

    @batched_kernel(oracle="cells_from_split_values")
    def cells(self, features, split_values) -> tuple[np.ndarray, int]:
        """Mixed-radix cell ids for one combination.

        Mirrors :func:`~..metrics.information.cells_from_split_values`:
        feature ``f`` with ``k`` distinct split values contributes radix
        ``k + 1``; the returned ``n_cells`` is the full radix product.
        """
        if len(features) != len(split_values):
            raise ConfigurationError(
                "feature_indices and split_values length mismatch"
            )
        if not len(features):
            raise ConfigurationError("need at least one feature to build cells")
        cell: "np.ndarray | None" = None
        stride = 1
        for f, values in zip(features, split_values):
            codes, n_values = self.digit(f, values, stride)
            if cell is None:
                cell = codes
            else:
                cell += codes
            stride *= n_values + 1
        return cell, int(stride)


@kernel_exempt("associative merge helper for combination count partials, not a kernel")
def merge_combination_counts(a: list, b: list) -> list:
    """Merge two :func:`combination_count_partial` results elementwise.

    Dense partials add; sparse partials union their labeled-code keys and
    add counts per key. Both operations are exact integer arithmetic, so
    merging is associative and bit-identical to a single-pass partial.
    """
    merged: list = []
    for pa, pb in zip(a, b):
        if pa is None or pb is None:
            merged.append(pa if pb is None else pb)
        elif pa[0] == "dense":
            merged.append(("dense", pa[1] + pb[1]))
        else:
            keys = np.unique(np.concatenate([pa[1], pb[1]]))
            counts = np.zeros(keys.size, dtype=np.int64)
            counts[np.searchsorted(keys, pa[1])] += pa[2]
            counts[np.searchsorted(keys, pb[1])] += pb[2]
            merged.append(("sparse", keys, counts))
    return merged


@batched_kernel(oracle="information_gain_ratio")
@chunk_mergeable(merge=merge_combination_counts, exact=True)
def combination_count_partial(
    X_chunk: np.ndarray,
    y_chunk: np.ndarray,
    combos,
    dense_limit: int,
) -> list:
    """Labeled-cell counts of every combination for one row chunk.

    The sufficient statistic of Algorithm 2 ranking: one entry per
    combination — ``None`` for empty combinations, ``("dense", counts)``
    (a length-``stride`` labeled-cell bincount) when the labeled radix
    fits ``dense_limit``, else ``("sparse", keys, counts)`` (the chunk's
    occupied labeled codes and their counts). Pooled split-value unions
    are data-independent, so every chunk builds an identical
    :class:`IntervalCodeCache` layout and partials merge positionally by
    :func:`merge_combination_counts`, bit-identically.

    ``dense_limit`` must come from the *total* row count (see
    :func:`score_combinations`) so all chunks pick the same shape.
    """
    y_chunk = np.asarray(y_chunk).ravel()
    y01 = (y_chunk == 1).astype(np.int64)
    cache = IntervalCodeCache(X_chunk, combos, label=y01)
    partials: list = []
    for combo in combos:
        if not combo.features:
            partials.append(None)
            continue
        labeled: "np.ndarray | None" = None
        stride = 2  # digit 0 is the label, emitted by the first feature
        for f, values in zip(combo.features, combo.split_values):
            codes, n_values = cache.digit(
                f, values, stride, include_label=labeled is None
            )
            if labeled is None:
                labeled = codes
            else:
                labeled += codes
            stride *= n_values + 1
        if 0 < stride <= dense_limit:
            partials.append(("dense", np.bincount(labeled, minlength=stride)))
        else:
            keys, counts = np.unique(labeled, return_counts=True)
            partials.append(("sparse", keys.astype(np.int64), counts))
    return partials


@batched_kernel(oracle="information_gain_ratio")
def gain_ratio_from_combination_counts(
    partials: list,
    n_rows: int,
    base_entropy: float,
) -> np.ndarray:
    """Finalize per-combination gain ratios from merged count partials.

    Dense partials reshape straight into the interleaved ``(cell, class)``
    table; sparse partials regroup their labeled codes (``2 * cell + y``)
    into the same occupied-cells-ascending table the in-memory
    unique-based path builds. Counts are exact integers, so the streamed
    gain ratios are bit-identical to :func:`score_combinations` over the
    materialized rows.
    """
    out = np.zeros(len(partials))
    for i, part in enumerate(partials):
        if part is None:
            continue
        if part[0] == "dense":
            both = part[1].reshape(-1, 2)
        else:
            keys, counts = part[1], part[2]
            cells = keys >> 1
            unique_cells = np.unique(cells)
            both = np.zeros((unique_cells.size, 2), dtype=np.int64)
            both[np.searchsorted(unique_cells, cells), keys & 1] += counts
        out[i] = gain_ratio_from_counts(both, n_rows, base_entropy)
    return out


@batched_kernel(oracle="information_gain_ratio")
def score_combinations(X: np.ndarray, y: np.ndarray, combos) -> np.ndarray:
    """Gain ratio for every combination, through the shared code cache.

    Returns one float per element of ``combos`` (0.0 for empty
    combinations), numerically identical to the scalar
    ``information_gain_ratio(y, cells_from_split_values(...))`` chain.

    The binary label rides along as the lowest mixed-radix digit, so each
    combination costs one pre-scaled table take per feature plus a single
    interleaved ``bincount`` — no per-cell work, no second pass for the
    label counts. This is the one-chunk composition of
    :func:`combination_count_partial` and
    :func:`gain_ratio_from_combination_counts`; streaming callers run the
    same two halves over many chunks.
    """
    y = np.asarray(y).ravel()
    n = y.size
    base = entropy(y)
    dense_limit = 2 * max(
        _DENSE_CELL_FACTOR * n, _DENSE_CELL_FLOOR
    )  # labeled radix = 2 * n_cells
    partials = combination_count_partial(
        np.asarray(X, dtype=np.float64), y, combos, dense_limit
    )
    return gain_ratio_from_combination_counts(partials, n, base)
