"""Divergence measures and the paper's feature-stability score.

Section V-A.5 evaluates how *stable* an AutoFE method is: run it ``T``
times, pool the ``2MT`` generated feature identities, and compare the
observed frequency distribution against the ideal one (the same ``2M``
features appearing all ``T`` times) using Jensen-Shannon divergence
(Eq. 14–15). Lower is better.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Sequence

import numpy as np

from ..exceptions import DataError

_EPS = 1e-12


def kl_divergence(p: "np.ndarray | list", q: "np.ndarray | list") -> float:
    """Kullback-Leibler divergence ``KLD(P || Q)`` in nats (Eq. 15).

    Inputs are normalized to sum to one. Zero entries of ``p`` contribute
    nothing; zero entries of ``q`` where ``p > 0`` are smoothed by eps so
    the result stays finite (the reference JSD usage guarantees
    ``q > 0`` wherever ``p > 0`` anyway).
    """
    p = np.asarray(p, dtype=np.float64).ravel()
    q = np.asarray(q, dtype=np.float64).ravel()
    if p.size != q.size:
        raise DataError("p and q must have equal length")
    if p.size == 0:
        raise DataError("empty distributions")
    if (p < 0).any() or (q < 0).any():
        raise DataError("distributions must be nonnegative")
    ps, qs = p.sum(), q.sum()
    if ps <= 0 or qs <= 0:
        raise DataError("distributions must have positive mass")
    p = p / ps
    q = q / qs
    nz = p > 0
    return float((p[nz] * np.log(p[nz] / np.maximum(q[nz], _EPS))).sum())


def js_divergence(p: "np.ndarray | list", q: "np.ndarray | list") -> float:
    """Jensen-Shannon divergence (Eq. 14): symmetric, bounded by ln 2."""
    p = np.asarray(p, dtype=np.float64).ravel()
    q = np.asarray(q, dtype=np.float64).ravel()
    if p.size != q.size:
        raise DataError("p and q must have equal length")
    ps, qs = p.sum(), q.sum()
    if ps <= 0 or qs <= 0:
        raise DataError("distributions must have positive mass")
    p = p / ps
    q = q / qs
    m = 0.5 * (p + q)
    # Rounding in the KL terms can produce a tiny negative total for
    # (near-)identical inputs; JSD is nonnegative by definition, so clamp.
    return max(0.0, 0.5 * (kl_divergence(p, m) + kl_divergence(q, m)))


def feature_stability(
    runs: Sequence[Iterable[Hashable]],
    n_features_per_run: "int | None" = None,
) -> float:
    """Stability of generated-feature identities across repeated runs.

    Parameters
    ----------
    runs:
        One iterable of feature identifiers (e.g. canonical expression
        strings) per repetition of the AutoFE procedure.
    n_features_per_run:
        The nominal output size ``2M``; defaults to the largest run size.

    Returns
    -------
    float
        ``JSD(observed || ideal)`` where *observed* is the pooled frequency
        distribution of distinct features across runs and *ideal* is the
        best case of the same ``2M`` features recurring in every run
        (paper §V-A.5). 0 means perfectly stable.
    """
    runs = [list(run) for run in runs]
    if not runs:
        raise DataError("feature_stability needs at least one run")
    t = len(runs)
    if n_features_per_run is None:
        n_features_per_run = max(len(run) for run in runs)
    if n_features_per_run <= 0:
        raise DataError("runs contain no features")
    counter: Counter = Counter()
    for run in runs:
        counter.update(set(run))
    observed = np.array(sorted(counter.values(), reverse=True), dtype=np.float64)
    # Ideal: the same n features, each occurring in all t runs.
    ideal = np.full(n_features_per_run, float(t))
    # Align supports: pad the shorter distribution with zero-mass bins.
    size = max(observed.size, ideal.size)
    obs_pad = np.zeros(size)
    obs_pad[: observed.size] = observed
    ideal_pad = np.zeros(size)
    ideal_pad[: ideal.size] = ideal
    return js_divergence(obs_pad, ideal_pad)
