"""Evaluation and feature-scoring metrics."""

from .auc import accuracy_score, roc_auc_score, roc_curve
from .batched import gain_ratio_from_cells, information_values_matrix
from .dependence import distance_correlation, related_pairs
from .divergence import feature_stability, js_divergence, kl_divergence
from .information import (
    DEFAULT_IV_THRESHOLD,
    DEFAULT_PEARSON_THRESHOLD,
    IV_PREDICTIVE_POWER_BANDS,
    cells_from_split_values,
    entropy,
    information_gain,
    information_gain_ratio,
    information_value,
    information_values,
    iv_predictive_power,
    partition_entropy,
    pearson_correlation,
    pearson_matrix,
)

__all__ = [
    "DEFAULT_IV_THRESHOLD",
    "DEFAULT_PEARSON_THRESHOLD",
    "IV_PREDICTIVE_POWER_BANDS",
    "accuracy_score",
    "cells_from_split_values",
    "distance_correlation",
    "entropy",
    "feature_stability",
    "gain_ratio_from_cells",
    "information_gain",
    "information_gain_ratio",
    "information_value",
    "information_values",
    "information_values_matrix",
    "iv_predictive_power",
    "js_divergence",
    "kl_divergence",
    "partition_entropy",
    "pearson_correlation",
    "pearson_matrix",
    "related_pairs",
    "roc_auc_score",
    "roc_curve",
]
