"""Area Under the ROC Curve, the paper's sole evaluation metric.

Implemented via the rank-statistic (Mann-Whitney U) formulation with
midrank tie handling, which is exact and O(N log N).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import rankdata

from ..exceptions import DataError


def roc_auc_score(y_true: "np.ndarray | list", y_score: "np.ndarray | list") -> float:
    """AUC of ``y_score`` against binary labels ``y_true``.

    Raises :class:`DataError` when only one class is present (AUC is
    undefined in that case), matching scikit-learn behaviour.
    """
    y = np.asarray(y_true, dtype=np.float64).ravel()
    s = np.asarray(y_score, dtype=np.float64).ravel()
    if y.size != s.size:
        raise DataError(f"y_true has {y.size} entries, y_score has {s.size}")
    if y.size == 0:
        raise DataError("empty input to roc_auc_score")
    pos = y == 1
    n_pos = int(pos.sum())
    n_neg = y.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise DataError("roc_auc_score requires both classes present")
    ranks = rankdata(s, method="average")
    pos_rank_sum = float(ranks[pos].sum())
    u = pos_rank_sum - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def roc_curve(
    y_true: "np.ndarray | list", y_score: "np.ndarray | list"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute ``(fpr, tpr, thresholds)`` at every distinct score cut.

    Used by examples/diagnostics; AUC itself uses the rank formulation.
    """
    y = np.asarray(y_true, dtype=np.float64).ravel()
    s = np.asarray(y_score, dtype=np.float64).ravel()
    if y.size != s.size or y.size == 0:
        raise DataError("roc_curve requires equal-length nonempty inputs")
    order = np.argsort(-s, kind="mergesort")
    y_sorted = y[order]
    s_sorted = s[order]
    distinct = np.r_[np.flatnonzero(np.diff(s_sorted)), y.size - 1]
    tps = np.cumsum(y_sorted == 1)[distinct].astype(np.float64)
    fps = np.cumsum(y_sorted != 1)[distinct].astype(np.float64)
    n_pos = float((y == 1).sum())
    n_neg = float((y != 1).sum())
    tpr = tps / n_pos if n_pos else np.zeros_like(tps)
    fpr = fps / n_neg if n_neg else np.zeros_like(fps)
    tpr = np.r_[0.0, tpr]
    fpr = np.r_[0.0, fpr]
    thresholds = np.r_[np.inf, s_sorted[distinct]]
    return fpr, tpr, thresholds


def accuracy_score(y_true: "np.ndarray | list", y_pred: "np.ndarray | list") -> float:
    """Plain accuracy, used in a few diagnostics."""
    y = np.asarray(y_true).ravel()
    p = np.asarray(y_pred).ravel()
    if y.size != p.size or y.size == 0:
        raise DataError("accuracy_score requires equal-length nonempty inputs")
    return float((y == p).mean())
