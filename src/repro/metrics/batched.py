"""Batched (matrix-shaped) scoring kernels for the two selection hot paths.

The scalar implementations in :mod:`.information` are the *reference*
semantics: one combination or one column at a time, easy to audit against
the paper. The kernels here produce numerically identical results (same
binning, same epsilon smoothing, same occupied-bin masking) but are shaped
so NumPy does all the per-row and per-cell work:

* :func:`gain_ratio_from_cells` — the Algorithm 2 criterion for one
  partition, with **one** integer ``bincount`` yielding both the cell
  counts and the per-cell positive counts (labels are interleaved into
  the cell code), and conditional entropy + split information computed
  from that single pass. When the cell radix is unknown or too large a
  single ``np.unique`` pass replaces the dense histogram.
* :func:`information_values_matrix` — Algorithm 3 over *all* candidate
  columns at once: one matrix sort replaces the per-column quantile
  ``Binner`` refits, and column-offset codes let a single flattened
  ``bincount`` per class produce every column's WoE table (the same
  offset-code trick the histogram tree in ``boosting/tree.py`` uses to
  build all feature histograms in one shot).
"""

from __future__ import annotations

import numpy as np

from ..analysis.registry import batched_kernel, chunk_mergeable, kernel_exempt
from ..exceptions import DataError
from .information import _EPS, _xlogx, entropy

#: Dense-histogram threshold: past this many cells per row, fall back to a
#: ``np.unique`` pass instead of allocating the full histogram.
_DENSE_CELL_FACTOR = 4
_DENSE_CELL_FLOOR = 1 << 16


@batched_kernel(oracle="information_gain_ratio")
def gain_ratio_from_cells(
    y: np.ndarray,
    cells: np.ndarray,
    n_cells: "int | None" = None,
    base_entropy: "float | None" = None,
) -> float:
    """Information gain ratio of the partition ``cells``, fully vectorized.

    Matches :func:`.information.information_gain_ratio` to float precision.

    Parameters
    ----------
    n_cells:
        Upper bound on cell ids (the mixed-radix product) when known; a
        small bound enables the dense one-``bincount`` path. ``None``
        falls back to a single ``np.unique`` pass.
    base_entropy:
        Precomputed ``entropy(y)`` so batch callers pay for it once.
    """
    y = np.asarray(y).ravel()
    cells = np.asarray(cells).ravel()
    if y.size != cells.size:
        raise DataError("y and cells must have equal length")
    if y.size == 0:
        return 0.0
    n = y.size
    y01 = (y == 1).astype(np.int64)
    if base_entropy is None:
        base_entropy = entropy(y)
    if n_cells is not None and 0 < n_cells <= max(_DENSE_CELL_FACTOR * n, _DENSE_CELL_FLOOR):
        # Interleave the binary label into the cell code: one integer
        # bincount then yields (negatives, positives) per cell.
        return gain_ratio_from_labeled_cells(
            cells.astype(np.int64) * 2 + y01, 2 * int(n_cells), n, base_entropy
        )
    _, inverse, totals = np.unique(cells, return_inverse=True, return_counts=True)
    return gain_ratio_from_labeled_cells(
        inverse.astype(np.int64) * 2 + y01, 2 * totals.size, n, base_entropy
    )


@kernel_exempt("associative merge helper for integer count partials, not a kernel")
def merge_counts(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two integer count partials: elementwise sum.

    Integer addition is associative and commutative, so partials built
    over any chunking (or sharding) of the rows merge to the exact
    single-pass counts — the streamed statistics are bit-identical.
    """
    return a + b


@batched_kernel(oracle="information_gain_ratio")
@chunk_mergeable(merge=merge_counts, exact=True)
def labeled_cell_counts(labeled: np.ndarray, n_codes: int) -> np.ndarray:
    """Per-cell ``(negatives, positives)`` counts — the gain-ratio partial.

    ``labeled[i] == 2 * cell[i] + (y[i] == 1)``; one integer ``bincount``
    yields the interleaved class counts of every cell, reshaped to
    ``(n_cells, 2)``. This is the sufficient statistic of the Algorithm 2
    criterion: partials over row chunks merge by :func:`merge_counts`
    (bit-identically) and :func:`gain_ratio_from_counts` finalizes.
    """
    return np.bincount(labeled, minlength=n_codes).reshape(-1, 2)


@batched_kernel(oracle="information_gain_ratio")
def gain_ratio_from_counts(
    both: np.ndarray,
    n_rows: int,
    base_entropy: float,
) -> float:
    """Finalize a gain ratio from merged ``(n_cells, 2)`` class counts.

    The pure-arithmetic half of :func:`gain_ratio_from_labeled_cells`:
    conditional entropy and split information both fall out of the one
    count table, so the streamed result is bit-identical to the
    in-memory kernel whenever the counts are (integer merges are exact).
    """
    totals = both.sum(axis=1)
    occupied = totals > 0
    totals = totals[occupied]
    pos = both[occupied, 1]
    w = totals / n_rows  # repro: ignore[div-guard] n_rows >= 1 whenever any cell is occupied
    split_info = float(-(w * np.log(np.maximum(w, _EPS))).sum())
    if split_info <= _EPS:
        return 0.0
    p1 = pos / totals
    conditional = float((w * -(_xlogx(p1) + _xlogx(1.0 - p1))).sum())
    gain = max(0.0, base_entropy - conditional)
    return float(gain / split_info)


@batched_kernel(oracle="information_gain_ratio")
def gain_ratio_from_labeled_cells(
    labeled: np.ndarray,
    n_codes: int,
    n_rows: int,
    base_entropy: float,
) -> float:
    """Gain ratio when the label is folded in as the lowest radix digit.

    ``labeled[i] == 2 * cell[i] + (y[i] == 1)`` — one ``bincount`` then
    produces the interleaved (negative, positive) counts of every cell,
    and both conditional entropy and split information fall out of the
    same pass. This is the innermost kernel of the batched ranking
    engine; callers compose the labeled codes directly (the label is just
    another mixed-radix digit) so no separate ``2 * cells + y`` pass is
    paid per combination. Internally it is the one-chunk composition of
    :func:`labeled_cell_counts` and :func:`gain_ratio_from_counts` —
    streaming callers run the same two halves over many chunks.
    """
    return gain_ratio_from_counts(
        labeled_cell_counts(labeled, n_codes), n_rows, base_entropy
    )


@batched_kernel(oracle="information_value")
def information_values_matrix(
    X: np.ndarray,
    y: np.ndarray,
    n_bins: int = 10,
) -> np.ndarray:
    """Per-column information values (Eq. 6) computed matrix-at-once.

    Semantics match the guarded scalar path (``information_value`` behind
    the constant/non-finite guard of the selection stage): columns with no
    finite values or a constant finite part score 0.0; everything else
    gets the equal-frequency-bin IV with epsilon-smoothed WoE over
    occupied bins, missing values in their own bin.

    One ``np.sort`` over the masked matrix replaces every per-column
    quantile fit; column-offset codes and one flattened ``bincount`` per
    class replace the per-column count loops.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataError("information_values_matrix expects a matrix")
    y = np.asarray(y, dtype=np.float64).ravel()
    if X.shape[0] != y.size:
        raise DataError("X and y must have equal length")
    n_rows, n_cols = X.shape
    if n_cols == 0:
        return np.zeros(0)
    if n_rows == 0:
        raise DataError("empty input to information_values")
    pos_mask = y == 1
    n_pos = int(pos_mask.sum())
    n_neg = n_rows - n_pos
    if n_pos == 0 or n_neg == 0:
        raise DataError("information_value requires both classes present")

    # Column-major layout: every per-column pass below (sort, searchsorted,
    # offset add) then runs over contiguous memory.
    XT = np.ascontiguousarray(X.T)
    finiteT = np.isfinite(XT)
    n_finite = finiteT.sum(axis=1)
    maskedT = XT if finiteT.all() else np.where(finiteT, XT, np.nan)
    orderedT = np.sort(maskedT, axis=1)  # one sort replaces all quantile fits
    rows = np.arange(n_cols)
    col_max = orderedT[rows, np.maximum(n_finite - 1, 0)]
    with np.errstate(invalid="ignore"):
        scorable = (n_finite > 0) & (orderedT[:, 0] < col_max)

    # Equal-frequency interior edges for every column from the one sort:
    # method="lower" quantiles are just floor-indexed picks from the
    # sorted finite prefix (identical to the scalar Binner's edges).
    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    pick = np.floor(qs[None, :] * (n_finite[:, None] - 1)).astype(np.int64)
    pick = np.maximum(pick, 0)
    candidates = orderedT[rows[:, None], pick]

    edges_per_col: list[np.ndarray] = [np.empty(0)] * n_cols
    n_edges = np.zeros(n_cols, dtype=np.int64)
    for j in np.flatnonzero(scorable):
        edges = np.unique(candidates[j])
        edges = edges[edges < col_max[j]]
        edges_per_col[j] = edges
        n_edges[j] = edges.size

    stride = int(n_edges.max()) + 2
    counts = iv_bin_counts(XT, pos_mask, edges_per_col, scorable, stride, finiteT=finiteT)
    return iv_from_counts(counts[0], counts[1], n_pos, n_neg, scorable)


@batched_kernel(oracle="information_value")
@chunk_mergeable(merge=merge_counts, exact=True)
def iv_bin_counts(
    XT: np.ndarray,
    pos_mask: np.ndarray,
    edges_per_col: "list[np.ndarray]",
    scorable: np.ndarray,
    stride: int,
    finiteT: "np.ndarray | None" = None,
) -> np.ndarray:
    """Per-(class, column, bin) counts for a row chunk — the IV partial.

    Column-offset codes: column ``j`` owns the half-open slot
    ``[j*stride, (j+1)*stride)`` and the class label rides as the high
    bit, so a single flattened integer bincount counts every
    (class, column, bin) triple at once. Bin ``edges.size + 1`` of each
    column holds its non-finite rows (their own WoE bin).

    ``XT`` is the column-major ``(n_cols, chunk_rows)`` chunk and
    ``pos_mask`` its positive-label mask; ``edges_per_col``/``scorable``/
    ``stride`` must be identical across chunks (edges come from one
    up-front pass — the matrix sort in-memory, the quantile sketch when
    streaming). Returns ``(2, n_cols, stride)`` int64 counts
    (``[0]`` negatives, ``[1]`` positives) that merge across chunks by
    :func:`merge_counts`, bit-identically.
    """
    n_cols, n_rows = XT.shape
    if finiteT is None:
        finiteT = np.isfinite(XT)
    length = n_cols * stride
    label_offset = pos_mask.astype(np.int64) * length
    flat = np.empty((n_cols, n_rows), dtype=np.int64)
    for j in range(n_cols):
        base = j * stride
        if not scorable[j]:
            flat[j] = base
            continue
        edges = edges_per_col[j]
        np.add(np.searchsorted(edges, XT[j], side="left"), base, out=flat[j])
        col_finite = finiteT[j]
        if not col_finite.all():
            flat[j][~col_finite] = base + edges.size + 1
        flat[j] += label_offset

    return np.bincount(flat.ravel(), minlength=2 * length).reshape(2, -1, stride)


@batched_kernel(oracle="information_value")
def iv_from_counts(
    neg_counts: np.ndarray,
    pos_counts: np.ndarray,
    n_pos: int,
    n_neg: int,
    scorable: np.ndarray,
) -> np.ndarray:
    """Finalize per-column IVs from merged ``(n_cols, stride)`` bin counts.

    The pure-arithmetic half of :func:`information_values_matrix`:
    epsilon-smoothed WoE over occupied bins, unscorable columns zeroed.
    Given exact counts (integer merges are), the streamed IVs are
    bit-identical to the in-memory kernel's.
    """
    neg_counts = np.asarray(neg_counts, dtype=np.float64)
    pos_counts = np.asarray(pos_counts, dtype=np.float64)
    total_counts = neg_counts + pos_counts

    p = np.maximum(pos_counts / n_pos, _EPS)  # repro: ignore[div-guard] callers validate n_pos > 0 (both classes present)
    q = np.maximum(neg_counts / n_neg, _EPS)  # repro: ignore[div-guard] callers validate n_neg > 0 (both classes present)
    occupied = total_counts > 0
    contributions = np.where(occupied, (p - q) * np.log(p / q), 0.0)
    ivs = contributions.sum(axis=1)
    ivs[~scorable] = 0.0
    return ivs
