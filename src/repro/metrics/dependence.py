"""Dependence measures beyond Pearson: distance correlation.

AutoLearn [24] mines *related* feature pairs with distance correlation
(Székely et al., 2007), which detects nonlinear association that Pearson
misses. The exact statistic is O(N²) in memory and time, so
:func:`distance_correlation` computes it on a deterministic subsample —
the association decision AutoLearn makes is threshold-based and robust to
subsampling.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataError

_MAX_EXACT = 512


def _double_centered_distance(x: np.ndarray) -> np.ndarray:
    d = np.abs(x[:, None] - x[None, :])
    row_mean = d.mean(axis=1, keepdims=True)
    col_mean = d.mean(axis=0, keepdims=True)
    return d - row_mean - col_mean + d.mean()


def distance_correlation(
    x: "np.ndarray | list",
    y: "np.ndarray | list",
    max_samples: int = _MAX_EXACT,
) -> float:
    """Distance correlation in [0, 1]; 0 iff (asymptotically) independent.

    Rows beyond ``max_samples`` are reduced by a deterministic stride
    subsample so the O(N²) pairwise-distance matrices stay bounded.
    """
    a = np.asarray(x, dtype=np.float64).ravel()
    b = np.asarray(y, dtype=np.float64).ravel()
    if a.size != b.size:
        raise DataError("inputs to distance_correlation must have equal length")
    if a.size < 4:
        raise DataError("distance_correlation needs at least 4 samples")
    ok = np.isfinite(a) & np.isfinite(b)
    a, b = a[ok], b[ok]
    if a.size < 4:
        return 0.0
    if a.size > max_samples:
        stride = int(np.ceil(a.size / max_samples))
        a, b = a[::stride], b[::stride]
    A = _double_centered_distance(a)
    B = _double_centered_distance(b)
    n2 = float(a.size * a.size)
    dcov2 = (A * B).sum() / n2
    dvar_a = (A * A).sum() / n2
    dvar_b = (B * B).sum() / n2
    denom = np.sqrt(dvar_a * dvar_b)
    if denom <= 0:
        return 0.0
    return float(np.sqrt(max(dcov2, 0.0) / denom))


def related_pairs(
    X: np.ndarray,
    threshold: float = 0.2,
    max_samples: int = _MAX_EXACT,
) -> list[tuple[int, int, float]]:
    """All column pairs whose distance correlation exceeds ``threshold``.

    Returns ``(i, j, dcor)`` triples sorted by decreasing association —
    AutoLearn's "mining pairwise feature associations" step.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataError("related_pairs expects a matrix")
    out: list[tuple[int, int, float]] = []
    for i in range(X.shape[1]):
        for j in range(i + 1, X.shape[1]):
            score = distance_correlation(X[:, i], X[:, j], max_samples=max_samples)
            if score > threshold:
                out.append((i, j, score))
    out.sort(key=lambda t: (-t[2], t[0], t[1]))
    return out
