"""Information-theoretic feature scores from the paper.

* **Information value** (Eq. 6, Algorithm 3) with the Table I predictive-
  power bands — the first selection stage.
* **Pearson correlation** (Eq. 7, Algorithm 4) — the redundancy stage.
* **Entropy / information gain / information gain ratio** over partitions
  induced by split values — the combination-ranking criterion of
  Algorithm 2.
"""

from __future__ import annotations

import numpy as np

from ..analysis.registry import kernel_oracle
from ..exceptions import ConfigurationError, DataError
from ..tabular.binning import Binner

#: Table I of the paper: IV ranges and their conventional interpretation.
IV_PREDICTIVE_POWER_BANDS: tuple[tuple[float, float, str], ...] = (
    (0.0, 0.02, "useless"),
    (0.02, 0.1, "weak"),
    (0.1, 0.3, "medium"),
    (0.3, 0.5, "strong"),
    (0.5, float("inf"), "extremely strong"),
)

#: Default IV threshold alpha from the paper ("we take ... alpha = 0.1").
DEFAULT_IV_THRESHOLD: float = 0.1

#: Default Pearson threshold theta from the paper (Table II discussion).
DEFAULT_PEARSON_THRESHOLD: float = 0.8

_EPS = 1e-12


def iv_predictive_power(iv: float) -> str:
    """Map an IV value to its Table I band label."""
    if iv < 0:
        raise DataError("information value cannot be negative")
    for lo, hi, label in IV_PREDICTIVE_POWER_BANDS:
        if lo <= iv < hi:
            return label
    return IV_PREDICTIVE_POWER_BANDS[-1][2]


@kernel_oracle
def information_value(
    x: "np.ndarray | list",
    y: "np.ndarray | list",
    n_bins: int = 10,
) -> float:
    """Information value of feature ``x`` against binary target ``y``.

    Implements Eq. (6): ``IV = sum_i (p_i - q_i) * ln(p_i / q_i)`` where
    ``p_i``/``q_i`` are the shares of positive/negative records landing in
    equal-frequency bin ``i``. Empty-class bins are smoothed with a small
    epsilon (the standard WoE practice) so the sum stays finite.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size:
        raise DataError("x and y must have equal length")
    if x.size == 0:
        raise DataError("empty input to information_value")
    n_pos = float((y == 1).sum())
    n_neg = float((y != 1).sum())
    if n_pos == 0 or n_neg == 0:
        raise DataError("information_value requires both classes present")
    codes = Binner(n_bins=n_bins, strategy="quantile").fit_transform(x)
    n_codes = int(codes.max()) + 1
    pos_counts = np.bincount(codes[y == 1], minlength=n_codes).astype(np.float64)
    neg_counts = np.bincount(codes[y != 1], minlength=n_codes).astype(np.float64)
    p = np.maximum(pos_counts / n_pos, _EPS)
    q = np.maximum(neg_counts / n_neg, _EPS)
    occupied = (pos_counts + neg_counts) > 0
    woe = np.log(p / q)
    return float(((p - q) * woe)[occupied].sum())


def information_values(
    X: np.ndarray,
    y: np.ndarray,
    n_bins: int = 10,
) -> np.ndarray:
    """Vector of IVs, one per column of ``X``, guarded and batched.

    This is the one shared implementation behind both the metrics API and
    the selection stage: columns that cannot be scored (no finite values,
    or a constant finite part) get 0.0; every other column matches
    :func:`information_value`. All columns are binned and counted in one
    shot — see :func:`.batched.information_values_matrix`.
    """
    from .batched import information_values_matrix

    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataError("information_values expects a matrix")
    return information_values_matrix(X, y, n_bins=n_bins)


def pearson_correlation(x: "np.ndarray | list", y: "np.ndarray | list") -> float:
    """Pearson correlation per Eq. (7); 0.0 when either side is constant.

    "Constant" uses the same float-cancellation noise floor as
    :func:`pearson_matrix`: a vector whose centered norm is pure rounding
    noise relative to its magnitude yields summation-order noise, not
    signal, so it scores a deterministic 0.0 — the scalar and matrix
    paths agree on every input.
    """
    a = np.asarray(x, dtype=np.float64).ravel()
    b = np.asarray(y, dtype=np.float64).ravel()
    if a.size != b.size:
        raise DataError("inputs to pearson_correlation must have equal length")
    if a.size < 2:
        raise DataError("pearson_correlation needs at least 2 samples")
    floor_scale = np.sqrt(a.size) * np.finfo(np.float64).eps * 16
    floor_a = floor_scale * (np.abs(a).max() + 1.0)
    floor_b = floor_scale * (np.abs(b).max() + 1.0)
    a = a - a.mean()
    b = b - b.mean()
    norm_a = np.sqrt((a * a).sum())
    norm_b = np.sqrt((b * b).sum())
    if norm_a <= floor_a or norm_b <= floor_b:
        return 0.0
    return float(np.clip((a * b).sum() / (norm_a * norm_b), -1.0, 1.0))


@kernel_oracle
def pearson_matrix(X: np.ndarray) -> np.ndarray:
    """Pairwise |column| correlation matrix with constant-safe handling."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataError("pearson_matrix expects a matrix")
    centered = X - X.mean(axis=0)
    norms = np.sqrt((centered * centered).sum(axis=0))
    # A column whose centered norm is at float-cancellation level (its
    # spread is pure rounding noise relative to its magnitude) behaves as
    # constant; correlating such noise is meaningless and depends on
    # summation order, so zero it deterministically.
    scale = np.abs(X).max(axis=0)
    noise_floor = np.sqrt(X.shape[0]) * np.finfo(np.float64).eps * (scale + 1.0) * 16
    constant = norms <= noise_floor
    safe = norms.copy()
    safe[constant] = 1.0
    normalized = centered / safe
    corr = normalized.T @ normalized
    corr[constant, :] = 0.0
    corr[:, constant] = 0.0
    np.fill_diagonal(corr, 1.0)
    return np.clip(corr, -1.0, 1.0)


# ----------------------------------------------------------------------
# Entropy / gain over induced partitions (Algorithm 2 machinery)
# ----------------------------------------------------------------------
def entropy(y: "np.ndarray | list") -> float:
    """Shannon entropy (nats) of a discrete label vector."""
    y = np.asarray(y).ravel()
    if y.size == 0:
        return 0.0
    _, counts = np.unique(y, return_counts=True)
    return entropy_from_counts(counts)


def entropy_from_counts(counts: "np.ndarray | list") -> float:
    """Shannon entropy (nats) from per-value counts.

    The finalize half of :func:`entropy`: counts may come from one
    ``np.unique`` pass or be accumulated over row chunks (integer counts
    merge exactly, so the streamed result is bit-identical). Zero-count
    entries contribute ``0 log 0 = 0`` like absent values.
    """
    counts = np.asarray(counts)
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(-(_xlogx(p)).sum())


def _xlogx(p: np.ndarray) -> np.ndarray:
    """Elementwise ``p * log(p)`` with the convention ``0 log 0 = 0``."""
    return np.where(p > 0, p * np.log(np.maximum(p, _EPS)), 0.0)


def _partition_stats(y: np.ndarray, cells: np.ndarray) -> tuple[float, float]:
    """``(conditional_entropy, split_info)`` from one ``np.unique`` pass."""
    _, inverse, counts = np.unique(cells, return_inverse=True, return_counts=True)
    # Entropy per cell computed from positive share (binary labels).
    pos_per_cell = np.bincount(
        inverse, weights=(y == 1).astype(np.float64), minlength=counts.size
    )
    p1 = pos_per_cell / counts
    per_cell = -(_xlogx(p1) + _xlogx(1.0 - p1))
    weights = counts / y.size
    conditional = float((weights * per_cell).sum())
    split_info = float(-(weights * np.log(np.maximum(weights, _EPS))).sum())
    return conditional, split_info


def partition_entropy(y: np.ndarray, cells: np.ndarray) -> float:
    """Weighted label entropy after partitioning rows by ``cells`` ids."""
    y = np.asarray(y).ravel()
    cells = np.asarray(cells).ravel()
    if y.size != cells.size:
        raise DataError("y and cells must have equal length")
    if y.size == 0:
        return 0.0
    return _partition_stats(y, cells)[0]


@kernel_oracle
def cells_from_split_values(
    X: np.ndarray,
    feature_indices: "list[int] | tuple[int, ...]",
    split_values: "list[np.ndarray]",
) -> np.ndarray:
    """Assign each row a partition-cell id from feature split values.

    This realizes the Algorithm 2 partition: feature ``f`` with split-value
    set ``V_f`` divides records into ``|V_f| + 1`` intervals; the cross
    product over the combination's features yields
    ``prod_f (|V_f| + 1)`` cells.
    """
    X = np.asarray(X, dtype=np.float64)
    if len(feature_indices) != len(split_values):
        raise ConfigurationError("feature_indices and split_values length mismatch")
    if not feature_indices:
        raise ConfigurationError("need at least one feature to build cells")
    cell = np.zeros(X.shape[0], dtype=np.int64)
    stride = 1
    for f, values in zip(feature_indices, split_values):
        values = np.unique(np.asarray(values, dtype=np.float64))
        interval = np.searchsorted(values, X[:, f], side="left")
        cell += stride * interval
        stride *= values.size + 1
    return cell


def information_gain(y: np.ndarray, cells: np.ndarray) -> float:
    """Entropy reduction achieved by the partition ``cells``."""
    return max(0.0, entropy(y) - partition_entropy(y, cells))


@kernel_oracle
def information_gain_ratio(y: np.ndarray, cells: np.ndarray) -> float:
    """Information gain normalized by the partition's intrinsic entropy.

    The gain-ratio form (Quinlan) penalizes partitions with many tiny
    cells, preventing high-cardinality feature combinations from winning
    the Algorithm 2 ranking by sheer fragmentation. Conditional entropy
    and split information come from a single ``np.unique`` pass over the
    cells rather than one each.
    """
    y = np.asarray(y).ravel()
    cells = np.asarray(cells).ravel()
    if y.size != cells.size:
        raise DataError("y and cells must have equal length")
    if y.size == 0:
        return 0.0
    conditional, split_info = _partition_stats(y, cells)
    if split_info <= _EPS:
        return 0.0
    gain = max(0.0, entropy(y) - conditional)
    return float(gain / split_info)
