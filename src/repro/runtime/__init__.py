"""Fault-tolerant runtime for fit and serve.

Four pieces, layered under the SAFE pipeline and the serving path:

* :mod:`~repro.runtime.failpoints` — named, deterministically
  triggerable fault-injection sites (chaos tests drive every other
  piece through these);
* :mod:`~repro.runtime.retry` — :class:`RetryPolicy` (bounded attempts,
  exponential backoff with seeded jitter, per-attempt timeout) used by
  the process-pool paths in :mod:`repro.parallel`;
* :mod:`~repro.runtime.checkpoint` — atomic, checksummed per-iteration
  fit checkpoints with corrupt-file detection and config/schema
  fingerprints;
* :mod:`~repro.runtime.report` — :class:`RuntimeReport` /
  :class:`QuarantineRecord`, the fit's degraded-mode bookkeeping.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    STATS_FORMAT,
    CheckpointManager,
    CheckpointState,
    StatsCheckpointStore,
    config_fingerprint,
    schema_fingerprint,
)
from .failpoints import (
    ENV_VAR,
    FAILPOINTS,
    KNOWN_SITES,
    Activation,
    FailpointRegistry,
    active,
    failpoint,
    parse_spec,
)
from ..exceptions import FailpointSpecError
from .report import ChunkQuarantineRecord, QuarantineRecord, RuntimeReport
from .retry import RetryPolicy

__all__ = [
    "Activation",
    "FailpointSpecError",
    "CHECKPOINT_FORMAT",
    "STATS_FORMAT",
    "CheckpointManager",
    "CheckpointState",
    "ChunkQuarantineRecord",
    "ENV_VAR",
    "FAILPOINTS",
    "FailpointRegistry",
    "KNOWN_SITES",
    "QuarantineRecord",
    "RetryPolicy",
    "RuntimeReport",
    "StatsCheckpointStore",
    "active",
    "config_fingerprint",
    "failpoint",
    "parse_spec",
    "schema_fingerprint",
]
