"""Deterministic fault-injection points (the chaos-testing substrate).

A *failpoint* is a named site planted in production code that normally
costs one dict lookup and does nothing. Tests (or an operator debugging
a deployment) can *activate* a site so that reaching it raises — which
turns "the worker pool died mid-fit" or "the checkpoint write was cut
short" from an unreproducible incident into a deterministic test case.

Sites are a closed registry (:data:`KNOWN_SITES`): planting a new
``failpoint("...")`` call requires adding its name here, so the set of
injectable faults is auditable in one place and a typo'd activation
fails fast instead of silently never firing.

Activation modes (all deterministic):

* ``always`` — every hit raises;
* ``once``   — the first hit raises, later hits pass;
* ``nth``    — exactly the *n*-th hit of the site raises (1-based);
* ``prob``   — each hit raises with probability *p* drawn from a
  *seeded* ``random.Random`` stream, so a given seed yields the same
  hit pattern on every run;
* ``kill``   — every hit (or exactly the *K*-th with ``kill:K``)
  hard-exits the process via ``os._exit`` — but only in processes that
  declared themselves pool workers (:func:`mark_worker_process`, the
  executor initializer in :mod:`repro.parallel`). Anywhere else the
  mode degrades to raising, so arming it can never take down the
  driver process. In a worker it emulates a SIGKILL mid-shard: the
  parent observes a ``BrokenProcessPool``.

Activation is per-process: via the API (:func:`activate` /
:func:`active`, typically from a test) or via the ``REPRO_FAILPOINTS``
environment variable, e.g.::

    REPRO_FAILPOINTS="parallel.pool=nth:2,transform.evaluate=prob:0.1:42"

The environment is read lazily on the first failpoint evaluation, so
worker processes spawned with the variable set inherit the activations.
By default a triggered site raises :class:`~repro.exceptions.InjectedFault`;
API activations may supply another exception type (e.g.
``BrokenProcessPool``) to emulate a specific infrastructure failure.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..exceptions import ConfigurationError, FailpointSpecError, InjectedFault

#: Every plantable site, with a one-paragraph docstring describing where
#: the site sits and what real-world fault it models. Extend this dict
#: when planting a new failpoint — the site-registry meta-test fails on
#: an undocumented (or orphaned) entry.
SITE_DOCS: "dict[str, str]" = {
    "parallel.pool": (
        "Inside each process-pool attempt in repro.parallel._run_pool, "
        "before the executor is built. Models a pool that dies wholesale "
        "(BrokenProcessPool, pickling failure) so retry and serial-fallback "
        "paths can be driven deterministically."
    ),
    "generation.operator": (
        "Once per planned expression during feature generation. Models an "
        "operator implementation raising on real data; drives the "
        "quarantine-vs-raise policy (SAFEConfig.on_operator_error)."
    ),
    "selection.select": (
        "At the top of the selection stage (IV filter onward). Models a "
        "selection pass dying before any statistic is merged."
    ),
    "checkpoint.write": (
        "Between the two halves of a plan-checkpoint temp-file write in "
        "CheckpointManager.save. Models a crash mid-write: only the hidden "
        ".tmp is partial, the previous checkpoint survives."
    ),
    "checkpoint.read": (
        "At the top of CheckpointManager.load. Models an unreadable or "
        "poisoned checkpoint file, driving the skip-with-reason path."
    ),
    "transform.evaluate": (
        "Once per expression inside FeatureTransformer.transform. Models a "
        "serving-time evaluation fault; drives errors=\"null\" degradation."
    ),
    "pipeline.iteration": (
        "At the end of each completed SAFE.fit iteration, after its "
        "checkpoint is persisted. Models a process killed between "
        "iterations — the canonical resume-from-checkpoint scenario."
    ),
    # Serving-loop sites (see repro.serving): admission, one per
    # expression-evaluation step, a deadline-burning slow operator,
    # and a hot-swap candidate that fails its self-test.
    "serve.admit": (
        "During request admission in ServingSession.serve_one. Models an "
        "admission-path fault turning into a rejected (never wrong) response."
    ),
    "serve.operator": (
        "Once per expression evaluation in the serving loop. Models a "
        "poisoned expression; drives per-expression circuit breakers."
    ),
    "serve.slow_operator": (
        "Inside expression evaluation in the serving loop, burning the "
        "request deadline instead of raising. Drives deadline degradation."
    ),
    "serve.bad_swap_plan": (
        "Inside the hot-swap self-test in ServingSession.swap_plan. Models "
        "a candidate plan that loads but fails its probe row; the swap must "
        "roll back."
    ),
    # Streaming-fit recovery sites (see repro.core.stream and friends).
    "stream.shard.run": (
        "At the top of one row-shard reduction in a stream worker "
        "(repro.parallel shard runners, e.g. _stream_iv_shard). Models a "
        "worker failing (or dying, with the kill mode) mid-shard; drives "
        "per-shard retry, re-queue, and ShardFailureError exhaustion."
    ),
    "stream.chunk.read": (
        "Before each chunk yield in ChunkedDataset.iter_chunks. Models an "
        "I/O fault reading one chunk of the backing store mid-pass."
    ),
    "stream.stats.checkpoint": (
        "Between the temp-file write and the atomic rename of a "
        "sufficient-statistic snapshot in StatsCheckpointStore.save. Models "
        "a crash mid-checkpoint: the snapshot directory never holds a torn "
        "file, and a resume falls back to recomputing the stage."
    ),
}

#: Every plantable site. Derived from :data:`SITE_DOCS`.
KNOWN_SITES = frozenset(SITE_DOCS)

#: Environment variable holding comma-separated ``site=spec`` activations.
ENV_VAR = "REPRO_FAILPOINTS"

_MODES = ("always", "once", "nth", "prob", "kill")

#: True only in processes that declared themselves pool workers (see
#: :func:`mark_worker_process`). The ``kill`` mode hard-exits only then;
#: anywhere else it degrades to raising, so an armed kill can never take
#: down the driver process (or the test runner).
_IN_WORKER = False


def mark_worker_process() -> None:
    """Declare this process a disposable pool worker (pool initializer).

    ``repro.parallel`` passes this as the ``ProcessPoolExecutor``
    initializer so the ``kill`` failpoint mode knows it may ``os._exit``
    here to emulate a SIGKILL'd worker.
    """
    global _IN_WORKER
    _IN_WORKER = True


@dataclass
class Activation:
    """One activated failpoint: trigger mode plus hit bookkeeping."""

    name: str
    mode: str = "always"
    nth: "int | None" = None
    probability: "float | None" = None
    seed: "int | None" = 0
    raises: type = InjectedFault
    hits: int = 0
    fired: int = 0
    _rng: "random.Random | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.name not in KNOWN_SITES:
            raise ConfigurationError(
                f"unknown failpoint {self.name!r}; known sites: "
                f"{sorted(KNOWN_SITES)}"
            )
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"failpoint mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.mode == "nth":
            if self.nth is None or self.nth < 1:
                raise ConfigurationError("nth mode needs nth >= 1 (1-based)")
        if self.mode == "kill" and self.nth is not None and self.nth < 1:
            raise ConfigurationError("kill mode needs nth >= 1 (1-based) or none")
        if self.mode == "prob":
            if self.probability is None or not 0.0 <= self.probability <= 1.0:
                raise ConfigurationError("prob mode needs probability in [0, 1]")
            self._rng = random.Random(self.seed)

    def should_fire(self, hit: int) -> bool:
        """Whether the ``hit``-th evaluation (1-based) triggers the fault."""
        if self.mode == "always":
            return True
        if self.mode == "once":
            return hit == 1
        if self.mode == "nth":
            return hit == self.nth
        if self.mode == "kill":
            return True if self.nth is None else hit == self.nth
        return self._rng.random() < self.probability  # type: ignore[union-attr]


def parse_spec(name: str, spec: str) -> Activation:
    """Parse one ``site=spec`` value: ``always`` | ``once`` | ``nth:K`` |
    ``prob:P[:SEED]`` | ``kill[:K]``.

    Every failure — unknown site, unknown mode, malformed numbers, out of
    range parameters — raises :class:`~repro.exceptions.FailpointSpecError`
    naming the full offending ``site=spec`` entry, so a chaos config typo
    is one actionable line instead of a context-free ``ValueError`` (or,
    worse, a spec that silently never fires).
    """

    def bad(why: str, cause: "Exception | None" = None) -> FailpointSpecError:
        err = FailpointSpecError(
            f"bad failpoint spec {name}={spec!r}: {why} "
            "(expected always | once | nth:K | prob:P[:SEED] | kill[:K])"
        )
        err.__cause__ = cause
        return err

    parts = spec.split(":")
    mode = parts[0].strip().lower()
    try:
        if mode in ("always", "once") and len(parts) == 1:
            return Activation(name, mode=mode)
        if mode == "kill" and len(parts) in (1, 2):
            try:
                nth = int(parts[1]) if len(parts) == 2 else None
            except ValueError as exc:
                raise bad(f"{parts[1]!r} is not an integer", exc) from exc
            return Activation(name, mode="kill", nth=nth)
        if mode == "nth" and len(parts) == 2:
            try:
                nth = int(parts[1])
            except ValueError as exc:
                raise bad(f"{parts[1]!r} is not an integer", exc) from exc
            return Activation(name, mode="nth", nth=nth)
        if mode == "prob" and len(parts) in (2, 3):
            try:
                probability = float(parts[1])
                seed = int(parts[2]) if len(parts) == 3 else 0
            except ValueError as exc:
                raise bad("probability/seed must be numeric", exc) from exc
            return Activation(name, mode="prob", probability=probability, seed=seed)
    except FailpointSpecError:
        raise
    except ConfigurationError as exc:
        # Activation.__post_init__ rejected the site name or a parameter
        # range; re-raise naming the entry the bad value came from.
        raise bad(str(exc), exc) from exc
    raise bad(f"unknown or malformed mode {spec!r}")


class FailpointRegistry:
    """Process-wide registry of activated failpoints (thread-safe)."""

    def __init__(self) -> None:
        self._active: "dict[str, Activation]" = {}
        self._lock = threading.Lock()
        self._env_loaded = False

    # -- activation management -----------------------------------------
    def activate(
        self,
        name: str,
        mode: str = "always",
        nth: "int | None" = None,
        probability: "float | None" = None,
        seed: "int | None" = 0,
        raises: type = InjectedFault,
    ) -> Activation:
        """Arm ``name``; replaces any previous activation of the site."""
        activation = Activation(
            name,
            mode=mode,
            nth=nth,
            probability=probability,
            seed=seed,
            raises=raises,
        )
        with self._lock:
            self._active[name] = activation
        return activation

    def deactivate(self, name: str) -> None:
        with self._lock:
            self._active.pop(name, None)

    def reset(self) -> None:
        """Disarm everything (and mark the environment as consumed)."""
        with self._lock:
            self._active.clear()
            self._env_loaded = True

    def load_env(self, text: "str | None" = None) -> None:
        """Apply ``REPRO_FAILPOINTS``-style activations from ``text`` (or
        the real environment when ``None``).

        Parsing is all-or-nothing: every entry is validated *before* any
        activation is installed, so a malformed spec cannot leave the
        earlier entries half-armed — the registry is exactly as it was,
        and the raised :class:`~repro.exceptions.FailpointSpecError`
        names the offending entry.
        """
        if text is None:
            text = os.environ.get(ENV_VAR, "")
        parsed: "list[Activation]" = []
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            name, sep, spec = entry.partition("=")
            if not sep:
                raise FailpointSpecError(
                    f"bad {ENV_VAR} entry {entry!r} (expected site=spec)"
                )
            parsed.append(parse_spec(name.strip(), spec.strip()))
        with self._lock:
            for activation in parsed:
                self._active[activation.name] = activation
            self._env_loaded = True

    def active_sites(self) -> "dict[str, Activation]":
        with self._lock:
            return dict(self._active)

    # -- the hot path ---------------------------------------------------
    def evaluate(self, name: str) -> None:
        """Called by planted sites; raises when the site is armed and due."""
        if name not in KNOWN_SITES:
            raise ConfigurationError(
                f"failpoint site {name!r} is not registered in KNOWN_SITES"
            )
        if not self._env_loaded:
            self.load_env()
        activation = self._active.get(name)
        if activation is None:
            return
        with self._lock:
            activation.hits += 1
            hit = activation.hits
            fire = activation.should_fire(hit)
            if fire:
                activation.fired += 1
        if fire:
            if activation.mode == "kill" and _IN_WORKER:
                # Emulate a SIGKILL'd pool worker: no exception, no
                # cleanup, the parent sees a BrokenProcessPool. Outside a
                # declared worker this degrades to raising below, so an
                # armed kill can never take down the driver process.
                os._exit(86)
            raise activation.raises(
                f"injected fault at failpoint {name!r} (hit {hit})"
            )


#: The process-wide registry used by every planted site.
FAILPOINTS = FailpointRegistry()


def failpoint(name: str) -> None:
    """The planted-site entry point: near-free unless ``name`` is armed."""
    FAILPOINTS.evaluate(name)


@contextmanager
def active(
    name: str,
    mode: str = "always",
    nth: "int | None" = None,
    probability: "float | None" = None,
    seed: "int | None" = 0,
    raises: type = InjectedFault,
) -> Iterator[Activation]:
    """Scoped activation for tests: armed inside the block, disarmed after."""
    activation = FAILPOINTS.activate(
        name, mode=mode, nth=nth, probability=probability, seed=seed, raises=raises
    )
    try:
        yield activation
    finally:
        FAILPOINTS.deactivate(name)
