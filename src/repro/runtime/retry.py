"""Retry policies: bounded attempts, exponential backoff, seeded jitter.

A :class:`RetryPolicy` is a small frozen value object describing *how*
to retry — it owns no state, so one policy instance can be shared by
every call site. The delay schedule is deterministic given ``seed``:
``delays()`` yields the sleep to take before each attempt (0 before the
first), growing geometrically from ``base_delay`` by ``backoff`` up to
``max_delay``, each delay perturbed by ±``jitter`` (a fraction) drawn
from a seeded ``random.Random`` stream. Deterministic jitter keeps
chaos tests reproducible while still de-synchronizing real fleets.

``per_attempt_timeout`` bounds how long a single attempt may take where
the execution layer supports cancellation — the process-pool paths in
:mod:`repro.parallel` pass it to ``Executor.map``; for plain in-process
``call`` it is advisory only (Python cannot safely interrupt arbitrary
code).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

from ..exceptions import ConfigurationError, RetryExhaustedError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry a fallible operation.

    Parameters
    ----------
    max_attempts:
        Total attempts, including the first (so ``1`` means "no retry").
    base_delay:
        Sleep before the second attempt, in seconds.
    backoff:
        Geometric growth factor applied per additional attempt.
    max_delay:
        Upper clamp on any single sleep (applied before jitter).
    jitter:
        Fraction of each delay randomized symmetrically (0 disables;
        0.25 means each sleep lands in ``[0.75d, 1.25d]``).
    per_attempt_timeout:
        Seconds one attempt may run where enforceable (pool waits).
    seed:
        Seed of the jitter stream; identical seeds give identical
        schedules. ``None`` derives a nondeterministic stream.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    per_attempt_timeout: "float | None" = None
    seed: "int | None" = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be >= 0")
        if self.backoff < 1.0:
            raise ConfigurationError("backoff must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")
        if self.per_attempt_timeout is not None and self.per_attempt_timeout <= 0:
            raise ConfigurationError("per_attempt_timeout must be positive")

    # ------------------------------------------------------------------
    def delays(self) -> Iterator[float]:
        """Sleep (seconds) before each attempt: one value per attempt."""
        rng = random.Random(self.seed)
        for attempt in range(self.max_attempts):
            if attempt == 0:
                yield 0.0
                continue
            delay = min(self.max_delay, self.base_delay * self.backoff ** (attempt - 1))
            if self.jitter:
                delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield max(0.0, delay)

    def call(
        self,
        fn: Callable[..., T],
        *args,
        retry_on: "tuple[type, ...]" = (Exception,),
        sleep: Callable[[float], None] = time.sleep,
        **kwargs,
    ) -> T:
        """Run ``fn`` under this policy; raise when every attempt fails.

        Only exceptions matching ``retry_on`` are retried — anything else
        propagates immediately (a data error is not an infrastructure
        fault). After the last failed attempt a
        :class:`~repro.exceptions.RetryExhaustedError` chains the final
        cause.
        """
        last: "BaseException | None" = None
        for delay in self.delays():
            if delay > 0.0:
                sleep(delay)
            try:
                return fn(*args, **kwargs)
            except retry_on as exc:
                last = exc
        raise RetryExhaustedError(
            f"{getattr(fn, '__name__', fn)!r} failed after "
            f"{self.max_attempts} attempt(s): {last!r}"
        ) from last
