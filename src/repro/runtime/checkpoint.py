"""Checkpoint/resume for ``SAFE.fit``: atomic, checksummed, versioned.

After every completed Algorithm 1 iteration the pipeline can persist the
survivor expressions (the same JSON rendering
:meth:`repro.core.FeatureTransformer.save` uses), a fingerprint of the
config + input schema, and the iteration trace scalars. A restarted fit
with the same ``checkpoint_dir`` resumes from the newest checkpoint that

* parses as JSON,
* carries a matching payload checksum (truncated/corrupt files are
  *skipped with a warning*, never trusted),
* and matches the running fit's config fingerprint (a checkpoint from a
  different config or dataset schema must not seed this fit).

Writes are crash-safe: the record goes to a hidden temp file first
(``fsync``'d) and is atomically renamed into place, so a process killed
mid-write leaves the previous checkpoint intact. The
``checkpoint.write`` failpoint sits between the two halves of the temp
write and the ``checkpoint.read`` failpoint at the top of ``load``, so
chaos tests can cut a write short or poison reads deterministically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..exceptions import CheckpointError, InjectedFault
from ..operators.expressions import Expression, expression_from_dict
from .failpoints import failpoint

#: Format tag embedded in (and required of) every checkpoint record.
CHECKPOINT_FORMAT = "repro-checkpoint-v1"

_FILE_TEMPLATE = "iter_{:05d}.json"


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def schema_fingerprint(names: Sequence[str]) -> str:
    """Stable hash of an input schema (ordered column names)."""
    return _sha256(json.dumps(list(names)))


def config_fingerprint(config, names: Sequence[str]) -> str:
    """Stable hash of a fit's config + input schema.

    ``config`` is any dataclass (in practice
    :class:`~repro.core.SAFEConfig`); non-JSON field values are rendered
    via ``str`` so custom operator tuples etc. still fingerprint stably.
    """
    if dataclasses.is_dataclass(config):
        payload = dataclasses.asdict(config)
    else:
        payload = dict(config)
    body = {"config": payload, "schema": list(names)}
    return _sha256(json.dumps(body, sort_keys=True, default=str))


@dataclass(frozen=True)
class CheckpointState:
    """One validated checkpoint: where the fit can resume from."""

    iteration: int
    expressions: tuple[Expression, ...]
    config_hash: str
    traces: tuple[dict, ...]
    path: str


class CheckpointManager:
    """Owns one checkpoint directory: save, validate, pick latest."""

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, iteration: int) -> Path:
        return self.directory.joinpath(_FILE_TEMPLATE.format(iteration))

    def checkpoint_paths(self) -> "list[Path]":
        """Checkpoint files, newest iteration first."""
        return sorted(self.directory.glob("iter_*.json"), reverse=True)

    # ------------------------------------------------------------------
    def save(
        self,
        iteration: int,
        expressions: Sequence[Expression],
        config_hash: str,
        traces: Sequence[dict] = (),
    ) -> Path:
        """Atomically persist the state after ``iteration`` (0-based)."""
        payload = {
            "format": CHECKPOINT_FORMAT,
            "iteration": int(iteration),
            "config_hash": config_hash,
            "expressions": [e.to_dict() for e in expressions],
            "traces": [dict(t) for t in traces],
        }
        record = {
            "checksum": _sha256(json.dumps(payload, sort_keys=True)),
            "payload": payload,
        }
        text = json.dumps(record, indent=2)
        path = self.path_for(iteration)
        tmp = path.with_name(f".{path.name}.tmp")
        half = len(text) // 2
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(text[:half])
                # A fault here models a crash mid-write: only the hidden
                # .tmp is partial; the previous checkpoint survives.
                failpoint("checkpoint.write")
                fh.write(text[half:])
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return path

    # ------------------------------------------------------------------
    def load(
        self, path: "str | Path", expected_config_hash: "str | None" = None
    ) -> CheckpointState:
        """Parse + validate one checkpoint file; raise CheckpointError."""
        failpoint("checkpoint.read")
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {path} is not valid JSON (truncated write?): {exc}"
            ) from exc
        if not isinstance(record, dict) or "payload" not in record:
            raise CheckpointError(f"checkpoint {path} has no payload")
        payload = record["payload"]
        body = json.dumps(payload, sort_keys=True)
        if record.get("checksum") != _sha256(body):
            raise CheckpointError(
                f"checkpoint {path} failed its checksum (corrupt or tampered)"
            )
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {path} has format {payload.get('format')!r}, "
                f"expected {CHECKPOINT_FORMAT!r}"
            )
        config_hash = payload.get("config_hash", "")
        if expected_config_hash is not None and config_hash != expected_config_hash:
            raise CheckpointError(
                f"checkpoint {path} was written by a different config/schema "
                "(fingerprint mismatch)"
            )
        try:
            expressions = tuple(
                expression_from_dict(e) for e in payload["expressions"]
            )
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {path} holds undecodable expressions: {exc!r}"
            ) from exc
        if not expressions:
            raise CheckpointError(f"checkpoint {path} holds no expressions")
        return CheckpointState(
            iteration=int(payload["iteration"]),
            expressions=expressions,
            config_hash=config_hash,
            traces=tuple(payload.get("traces", ())),
            path=str(path),
        )

    def latest(
        self, expected_config_hash: "str | None" = None
    ) -> "tuple[CheckpointState | None, list[str]]":
        """Newest valid checkpoint plus the skip reasons for invalid ones.

        Corrupt / partial / mismatched files are *skipped* (reason
        recorded), falling back to the next-newest candidate — a bad
        final checkpoint must cost one iteration, not the whole run.
        """
        skipped: "list[str]" = []
        for path in self.checkpoint_paths():
            try:
                return self.load(path, expected_config_hash), skipped
            except (CheckpointError, InjectedFault) as exc:
                skipped.append(str(exc))
        return None, skipped
