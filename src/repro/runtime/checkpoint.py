"""Checkpoint/resume for ``SAFE.fit``: atomic, checksummed, versioned.

After every completed Algorithm 1 iteration the pipeline can persist the
survivor expressions (the same JSON rendering
:meth:`repro.core.FeatureTransformer.save` uses), a fingerprint of the
config + input schema, and the iteration trace scalars. A restarted fit
with the same ``checkpoint_dir`` resumes from the newest checkpoint that

* parses as JSON,
* carries a matching payload checksum (truncated/corrupt files are
  *skipped with a warning*, never trusted),
* and matches the running fit's config fingerprint (a checkpoint from a
  different config or dataset schema must not seed this fit).

Writes are crash-safe: the record goes to a hidden temp file first
(``fsync``'d) and is atomically renamed into place, so a process killed
mid-write leaves the previous checkpoint intact. The
``checkpoint.write`` failpoint sits between the two halves of the temp
write and the ``checkpoint.read`` failpoint at the top of ``load``, so
chaos tests can cut a write short or poison reads deterministically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..exceptions import CheckpointError, InjectedFault
from ..operators.expressions import Expression, expression_from_dict
from ..utils import atomic_path
from .failpoints import failpoint

#: Format tag embedded in (and required of) every checkpoint record.
CHECKPOINT_FORMAT = "repro-checkpoint-v1"

#: Format tag for sufficient-statistic snapshots (``StatsCheckpointStore``).
STATS_FORMAT = "repro-stats-v1"

_FILE_TEMPLATE = "iter_{:05d}.json"


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def schema_fingerprint(names: Sequence[str]) -> str:
    """Stable hash of an input schema (ordered column names)."""
    return _sha256(json.dumps(list(names)))


def config_fingerprint(config, names: Sequence[str]) -> str:
    """Stable hash of a fit's config + input schema.

    ``config`` is any dataclass (in practice
    :class:`~repro.core.SAFEConfig`); non-JSON field values are rendered
    via ``str`` so custom operator tuples etc. still fingerprint stably.
    """
    if dataclasses.is_dataclass(config):
        payload = dataclasses.asdict(config)
    else:
        payload = dict(config)
    body = {"config": payload, "schema": list(names)}
    return _sha256(json.dumps(body, sort_keys=True, default=str))


@dataclass(frozen=True)
class CheckpointState:
    """One validated checkpoint: where the fit can resume from."""

    iteration: int
    expressions: tuple[Expression, ...]
    config_hash: str
    traces: tuple[dict, ...]
    path: str


class CheckpointManager:
    """Owns one checkpoint directory: save, validate, pick latest."""

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, iteration: int) -> Path:
        return self.directory.joinpath(_FILE_TEMPLATE.format(iteration))

    def checkpoint_paths(self) -> "list[Path]":
        """Checkpoint files, newest iteration first."""
        return sorted(self.directory.glob("iter_*.json"), reverse=True)

    # ------------------------------------------------------------------
    def save(
        self,
        iteration: int,
        expressions: Sequence[Expression],
        config_hash: str,
        traces: Sequence[dict] = (),
    ) -> Path:
        """Atomically persist the state after ``iteration`` (0-based)."""
        payload = {
            "format": CHECKPOINT_FORMAT,
            "iteration": int(iteration),
            "config_hash": config_hash,
            "expressions": [e.to_dict() for e in expressions],
            "traces": [dict(t) for t in traces],
        }
        record = {
            "checksum": _sha256(json.dumps(payload, sort_keys=True)),
            "payload": payload,
        }
        text = json.dumps(record, indent=2)
        path = self.path_for(iteration)
        tmp = path.with_name(f".{path.name}.tmp")
        half = len(text) // 2
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(text[:half])
                # A fault here models a crash mid-write: only the hidden
                # .tmp is partial; the previous checkpoint survives.
                failpoint("checkpoint.write")
                fh.write(text[half:])
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return path

    # ------------------------------------------------------------------
    def load(
        self, path: "str | Path", expected_config_hash: "str | None" = None
    ) -> CheckpointState:
        """Parse + validate one checkpoint file; raise CheckpointError."""
        failpoint("checkpoint.read")
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {path} is not valid JSON (truncated write?): {exc}"
            ) from exc
        if not isinstance(record, dict) or "payload" not in record:
            raise CheckpointError(f"checkpoint {path} has no payload")
        payload = record["payload"]
        body = json.dumps(payload, sort_keys=True)
        if record.get("checksum") != _sha256(body):
            raise CheckpointError(
                f"checkpoint {path} failed its checksum (corrupt or tampered)"
            )
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {path} has format {payload.get('format')!r}, "
                f"expected {CHECKPOINT_FORMAT!r}"
            )
        config_hash = payload.get("config_hash", "")
        if expected_config_hash is not None and config_hash != expected_config_hash:
            raise CheckpointError(
                f"checkpoint {path} was written by a different config/schema "
                "(fingerprint mismatch)"
            )
        try:
            expressions = tuple(
                expression_from_dict(e) for e in payload["expressions"]
            )
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {path} holds undecodable expressions: {exc!r}"
            ) from exc
        if not expressions:
            raise CheckpointError(f"checkpoint {path} holds no expressions")
        return CheckpointState(
            iteration=int(payload["iteration"]),
            expressions=expressions,
            config_hash=config_hash,
            traces=tuple(payload.get("traces", ())),
            path=str(path),
        )

    def latest(
        self, expected_config_hash: "str | None" = None
    ) -> "tuple[CheckpointState | None, list[str]]":
        """Newest valid checkpoint plus the skip reasons for invalid ones.

        Corrupt / partial / mismatched files are *skipped* (reason
        recorded), falling back to the next-newest candidate — a bad
        final checkpoint must cost one iteration, not the whole run.
        """
        skipped: "list[str]" = []
        for path in self.checkpoint_paths():
            try:
                return self.load(path, expected_config_hash), skipped
            except (CheckpointError, InjectedFault) as exc:
                skipped.append(str(exc))
        return None, skipped


# ======================================================================
# Sufficient-statistic snapshots (mid-iteration recovery)
# ======================================================================

#: Sentinel distinguishing "no valid snapshot" from a stored ``None``.
MISSING = object()


def _encode_state(state) -> "tuple[dict, dict[str, np.ndarray]]":
    """Flatten a nested kernel state into a JSON spec + named arrays.

    Supported values: ``None``, ``bool``/``int``/``str``, ``float``
    (hex-encoded so the round-trip is bit-exact, NaN/inf included),
    ``np.ndarray`` (any non-object dtype), and ``list``/``tuple``/``dict``
    (string keys) of the above — which covers every ``@chunk_mergeable``
    accumulator state in the codebase without ever pickling.
    """
    arrays: "dict[str, np.ndarray]" = {}

    def encode(value):
        if value is None:
            return {"t": "none"}
        if isinstance(value, (bool, np.bool_)):
            return {"t": "bool", "v": bool(value)}
        if isinstance(value, (int, np.integer)):
            return {"t": "int", "v": int(value)}
        if isinstance(value, (float, np.floating)):
            return {"t": "float", "v": float(value).hex()}
        if isinstance(value, str):
            return {"t": "str", "v": value}
        if isinstance(value, np.ndarray):
            if value.dtype == object:
                raise CheckpointError("cannot snapshot object-dtype arrays")
            key = f"a{len(arrays)}"
            arrays[key] = np.ascontiguousarray(value)
            return {"t": "arr", "k": key}
        if isinstance(value, (list, tuple)):
            return {
                "t": "list" if isinstance(value, list) else "tuple",
                "items": [encode(v) for v in value],
            }
        if isinstance(value, dict):
            keys = list(value)
            if not all(isinstance(k, str) for k in keys):
                raise CheckpointError("snapshot dict keys must be strings")
            return {
                "t": "dict",
                "keys": keys,
                "items": [encode(value[k]) for k in keys],
            }
        raise CheckpointError(
            f"cannot snapshot value of type {type(value).__name__}"
        )

    return encode(state), arrays


def _decode_state(spec: dict, arrays: "dict[str, np.ndarray]"):
    """Inverse of :func:`_encode_state` (bit-exact for every leaf)."""
    kind = spec["t"]
    if kind == "none":
        return None
    if kind == "bool":
        return bool(spec["v"])
    if kind == "int":
        return int(spec["v"])
    if kind == "float":
        return float.fromhex(spec["v"])
    if kind == "str":
        return str(spec["v"])
    if kind == "arr":
        return np.asarray(arrays[spec["k"]])
    if kind == "list":
        return [_decode_state(s, arrays) for s in spec["items"]]
    if kind == "tuple":
        return tuple(_decode_state(s, arrays) for s in spec["items"])
    if kind == "dict":
        return {
            k: _decode_state(s, arrays)
            for k, s in zip(spec["keys"], spec["items"])
        }
    raise CheckpointError(f"unknown snapshot spec kind {kind!r}")


def _stats_checksum(meta_text: str, arrays: "dict[str, np.ndarray]") -> str:
    h = hashlib.sha256()
    h.update(meta_text.encode("utf-8"))
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        h.update(key.encode("utf-8"))
        h.update(str(arr.dtype).encode("utf-8"))
        h.update(repr(arr.shape).encode("utf-8"))
        h.update(arr.tobytes())
    return h.hexdigest()


def _stage_slug(stage: str) -> str:
    safe = re.sub(r"[^A-Za-z0-9._-]+", "-", stage).strip("-") or "stage"
    return f"{safe}-{_sha256(stage)[:10]}"


class StatsCheckpointStore:
    """Mid-iteration snapshots of merged sufficient-statistic state.

    Plan checkpoints (:class:`CheckpointManager`) are iteration-grained:
    a crash mid-iteration loses every merged shard. This store closes
    that gap — each *stage* of a streaming pass (a sketch, a merged
    count panel, one grown tree, one shard's merged prefix) can persist
    its accumulator state under a stable stage key and be restored on
    resume, so the fit continues from the last merged shard instead of
    restarting the pass.

    The same guarantees as plan checkpoints, in ``.npz`` instead of
    JSON: a format tag, the fit's config+schema fingerprint (a snapshot
    from a different config or dataset never seeds this fit), a SHA-256
    checksum over the spec and every array payload, and atomic
    temp-file + ``os.replace`` publication. Invalid snapshots are
    *skipped with a recorded reason*, never trusted — the stage just
    recomputes. State round-trips bit-exactly (floats are hex-encoded;
    arrays keep dtype and shape), which is what lets a resumed fit
    reproduce the uninterrupted Ψ bit-identically.

    Stage keys are scoped per iteration (``it00000/...``) and the whole
    store is :meth:`clear`-ed once the iteration's plan checkpoint
    lands, so stale statistics can never leak across iterations.
    """

    def __init__(self, directory: "str | Path", config_hash: str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.config_hash = config_hash
        self.written = 0
        self.resumed: "list[str]" = []
        self.skipped: "list[str]" = []

    def path_for(self, stage: str) -> Path:
        return self.directory.joinpath(f"stats_{_stage_slug(stage)}.npz")

    # ------------------------------------------------------------------
    def save(self, stage: str, state) -> Path:
        """Atomically persist one stage's merged state."""
        spec, arrays = _encode_state(state)
        meta = {
            "format": STATS_FORMAT,
            "stage": stage,
            "config_hash": self.config_hash,
            "spec": spec,
        }
        meta_text = json.dumps(meta, sort_keys=True)
        checksum = _stats_checksum(meta_text, arrays)
        path = self.path_for(stage)
        with atomic_path(path, suffix=".npz") as tmp:
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    __meta__=np.frombuffer(
                        meta_text.encode("utf-8"), dtype=np.uint8
                    ),
                    __checksum__=np.frombuffer(
                        checksum.encode("ascii"), dtype=np.uint8
                    ),
                    **arrays,
                )
                fh.flush()
                os.fsync(fh.fileno())
            # A fault here models a crash mid-checkpoint: the snapshot
            # was fully written to the hidden temp file but never
            # renamed into place, so readers see no torn state.
            failpoint("stream.stats.checkpoint")
        self.written += 1
        return path

    # ------------------------------------------------------------------
    def load(self, stage: str):
        """Validated state for ``stage``, or :data:`MISSING`.

        Every failure mode — absent file, unreadable zip, checksum or
        fingerprint mismatch, undecodable spec — returns :data:`MISSING`
        with the reason recorded on ``self.skipped`` (absence excepted):
        a bad snapshot costs one recompute, never a wrong resume.
        """
        path = self.path_for(stage)
        if not path.exists():
            return MISSING
        try:
            with np.load(path, allow_pickle=False) as payload:
                arrays = {k: payload[k] for k in payload.files}
        except Exception as exc:
            self.skipped.append(f"stats snapshot {path.name}: unreadable ({exc!r})")
            return MISSING
        try:
            meta_text = bytes(arrays.pop("__meta__")).decode("utf-8")
            checksum = bytes(arrays.pop("__checksum__")).decode("ascii")
            meta = json.loads(meta_text)
        except Exception as exc:
            self.skipped.append(f"stats snapshot {path.name}: bad metadata ({exc!r})")
            return MISSING
        if checksum != _stats_checksum(meta_text, arrays):
            self.skipped.append(
                f"stats snapshot {path.name}: failed its checksum (corrupt or tampered)"
            )
            return MISSING
        if meta.get("format") != STATS_FORMAT:
            self.skipped.append(
                f"stats snapshot {path.name}: format {meta.get('format')!r}, "
                f"expected {STATS_FORMAT!r}"
            )
            return MISSING
        if meta.get("config_hash") != self.config_hash:
            self.skipped.append(
                f"stats snapshot {path.name}: config/schema fingerprint mismatch"
            )
            return MISSING
        if meta.get("stage") != stage:
            self.skipped.append(
                f"stats snapshot {path.name}: stage {meta.get('stage')!r} "
                f"does not match {stage!r}"
            )
            return MISSING
        try:
            state = _decode_state(meta["spec"], arrays)
        except Exception as exc:
            self.skipped.append(f"stats snapshot {path.name}: undecodable ({exc!r})")
            return MISSING
        self.resumed.append(stage)
        return state

    def run(self, stage: str, compute: Callable[[], object]):
        """Load ``stage`` if a valid snapshot exists, else compute + save."""
        state = self.load(stage)
        if state is not MISSING:
            return state
        state = compute()
        self.save(stage, state)
        return state

    def note_skip(self, reason: str) -> None:
        """Record an out-of-band validation failure (e.g. a scratch file
        whose digest no longer matches its snapshot) on ``skipped``."""
        self.skipped.append(reason)

    # ------------------------------------------------------------------
    def scratch_dir(self, tag: str) -> str:
        """A persistent scratch directory keyed by ``tag`` (for memmaps
        that outlive a crash, e.g. the streaming GBM's code matrix)."""
        path = self.directory.joinpath(f"scratch-{_stage_slug(tag)}")
        path.mkdir(parents=True, exist_ok=True)
        return str(path)

    def scoped(self, prefix: str) -> "ScopedStats":
        return ScopedStats(self, prefix)

    def clear(self) -> None:
        """Drop every snapshot and scratch directory (iteration is durable
        in the plan checkpoint; mid-iteration state must not leak)."""
        for child in self.directory.iterdir():
            if child.is_dir():
                shutil.rmtree(child, ignore_errors=True)
            else:
                child.unlink(missing_ok=True)


class ScopedStats:
    """A stage-key-prefixed view of a :class:`StatsCheckpointStore`.

    Lets a nested pass (the mining GBM, the ranking GBM, one shard
    reducer) use short local stage names while the store keys stay
    globally unique per iteration. Shares the parent's counters.
    """

    def __init__(self, store: StatsCheckpointStore, prefix: str) -> None:
        self._store = store
        self._prefix = prefix

    def _key(self, stage: str) -> str:
        return f"{self._prefix}/{stage}"

    def save(self, stage: str, state):
        return self._store.save(self._key(stage), state)

    def load(self, stage: str):
        return self._store.load(self._key(stage))

    def run(self, stage: str, compute: Callable[[], object]):
        return self._store.run(self._key(stage), compute)

    def note_skip(self, reason: str) -> None:
        self._store.note_skip(self._key(reason))

    def scratch_dir(self, tag: str) -> str:
        return self._store.scratch_dir(self._key(tag))

    def scoped(self, prefix: str) -> "ScopedStats":
        return ScopedStats(self._store, self._key(prefix))
