"""Runtime health report: what a fit survived, degraded, or skipped.

``SAFE.fit`` exposes one :class:`RuntimeReport` per run (``runtime_report_``)
so operators can distinguish "clean fit" from "fit that completed by
quarantining two exploding expressions and resuming from iteration 3" —
the paper's industrial setting demands the run completes, but completing
*silently* would hide a degrading deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class QuarantineRecord:
    """One expression removed from an iteration instead of killing the fit."""

    key: str
    operator: str
    reason: str


@dataclass(frozen=True)
class ChunkQuarantineRecord:
    """One corrupt backing-store chunk excluded from a streaming fit.

    Produced by :class:`~repro.tabular.ChunkedDataset` under
    ``on_chunk_error="quarantine"`` when a chunk fails its integrity
    manifest; the row range is in *backing-file* coordinates.
    """

    chunk_index: int
    row_start: int
    row_stop: int
    path: str
    reason: str


@dataclass
class RuntimeReport:
    """Aggregated fault/degradation bookkeeping for one ``SAFE.fit`` run."""

    #: ``(iteration, record)`` for every quarantined expression.
    quarantined: "list[tuple[int, QuarantineRecord]]" = field(default_factory=list)
    #: Backing-store chunks excluded by the integrity manifest.
    chunks_quarantined: "list[ChunkQuarantineRecord]" = field(default_factory=list)
    #: Iteration a resumed fit restarted *after* (None = fresh fit).
    resumed_from_iteration: "int | None" = None
    #: Checkpoints successfully persisted during this run.
    checkpoints_written: int = 0
    #: Reasons for every checkpoint file skipped as corrupt/mismatched.
    checkpoints_skipped: "list[str]" = field(default_factory=list)
    #: Sufficient-statistic snapshots persisted during this run.
    stats_checkpoints_written: int = 0
    #: Stage keys restored from sufficient-statistic snapshots on resume.
    stats_stages_resumed: "list[str]" = field(default_factory=list)
    #: Reasons for every stats snapshot skipped as corrupt/mismatched.
    stats_checkpoints_skipped: "list[str]" = field(default_factory=list)

    # ------------------------------------------------------------------
    def record_quarantine(self, iteration: int, records) -> None:
        for record in records:
            self.quarantined.append((iteration, record))

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantined)

    def summary(self) -> dict:
        """JSON-able digest (stable keys, no objects)."""
        return {
            "quarantined": [
                {
                    "iteration": iteration,
                    "key": record.key,
                    "operator": record.operator,
                    "reason": record.reason,
                }
                for iteration, record in self.quarantined
            ],
            "chunks_quarantined": [
                {
                    "chunk_index": record.chunk_index,
                    "row_start": record.row_start,
                    "row_stop": record.row_stop,
                    "path": record.path,
                    "reason": record.reason,
                }
                for record in self.chunks_quarantined
            ],
            "resumed_from_iteration": self.resumed_from_iteration,
            "checkpoints_written": self.checkpoints_written,
            "checkpoints_skipped": list(self.checkpoints_skipped),
            "stats_checkpoints_written": self.stats_checkpoints_written,
            "stats_stages_resumed": list(self.stats_stages_resumed),
            "stats_checkpoints_skipped": list(self.stats_checkpoints_skipped),
        }
