"""Benchmark E8 — search-space reduction (Eq. 3 vs Eq. 5 vs realized).

Paper finding reproduced: path mining shrinks the feature-combination
search space dramatically on wide datasets — the realized number of
distinct mined pairs is a small fraction of the exhaustive T.
"""

from __future__ import annotations

from repro.experiments import search_space


def test_search_space_reduction(benchmark, bench_seed):
    result = benchmark.pedantic(
        search_space.run,
        kwargs=dict(
            datasets=("valley", "nomao"),
            scale=0.1,
            seed=bench_seed,
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )
    for ds in ("valley", "nomao"):
        row = result.rows[ds]
        realized = 4 * row["actual_distinct_pairs"]  # pairs × |O2|
        assert realized < row["T"] / 5, (
            f"{ds}: realized {realized} vs exhaustive {row['T']} — "
            "path mining should prune at least 80% of the space"
        )
        assert row["n_paths"] > 0
