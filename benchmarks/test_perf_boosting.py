"""Perf gate for the histogram-subtraction GBM training path (not tier-1).

Run explicitly with ``PYTHONPATH=src python -m pytest -m perf
benchmarks/test_perf_boosting.py``. Asserts the acceptance criteria of
the boosting fast-path PR: >= 3x training speedup over the seed's
depth-first grower on the 20k x 60 stochastic workload (deep trees,
``subsample=0.5``), and bit-identical training margins on the parity
configuration (``subsample=1.0``), where tree-growth semantics are
unchanged by the subsample bugfix.
"""

from __future__ import annotations

import numpy as np
import pytest

import run_perf

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def record():
    return run_perf.run_boosting_benchmark()


def test_training_speedup(record):
    assert record["n_trees"] == run_perf.BOOST_N_ESTIMATORS
    assert record["speedup"] >= 3.0


def test_parity_margins_bit_identical(record):
    assert record["parity"]["train_margins_bit_identical"] is True
    # Eval margins may deviate slightly: when two candidate splits have
    # *exactly* equal gain (same train partition through different
    # features), float subtraction noise can flip which one argmax picks.
    # Train routing is unaffected; off-train rows may route differently.
    assert record["parity"]["eval_margin_max_abs_diff"] < 1.0
    # The dense (non-subsampled) configuration must still be a clear win.
    assert record["parity"]["speedup"] >= 2.0


def test_subsample_partitions_shrink():
    """The fast path's trees train on true sub-partitions (the bugfix)."""
    X, y, X_eval, y_eval = run_perf.build_boosting_workload()
    model = run_perf.fast_gbm_fit(X, y, (X_eval, y_eval), run_perf.BOOST_SUBSAMPLE)
    roots = np.array([int(t.n_samples[0]) for t in model.trees_])
    assert (roots < X.shape[0]).all()
    # Binomial(20000, 0.5) concentrates tightly around 10000.
    assert abs(roots.mean() - run_perf.BOOST_SUBSAMPLE * X.shape[0]) < 500
