"""Benchmark E5 — regenerates Figure 4 (performance at different iterations).

Paper finding reproduced: performance improves (or holds) as SAFE iterates
and then plateaus — later iterations never collapse the AUC.
"""

from __future__ import annotations

from repro.experiments import fig4


def test_fig4_iteration_curve(benchmark, bench_gamma, bench_seed):
    result = benchmark.pedantic(
        fig4.run,
        kwargs=dict(
            datasets=("banknote",),
            rounds=3,
            classifier="xgb",
            scale=0.8,
            gamma=bench_gamma,
            seed=bench_seed,
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )
    curve = result.curves["banknote"]
    aucs = [a for __, a in curve]
    assert len(aucs) == 3
    # Later iterations stay within noise of the first round
    # (improve-then-plateau, no collapse). The tolerance absorbs the
    # selection-stage churn small samples exhibit.
    assert aucs[-1] >= aucs[0] - 4.0, f"iteration curve collapsed: {aucs}"
    assert max(aucs) - min(aucs) < 15.0, f"iteration curve unstable: {aucs}"
