"""Benchmark E3 — regenerates Table V (execution time).

Paper finding reproduced: SAFE (and the RAND/IMP ablations sharing its
selection pipeline) run far faster than the exhaustive TFC and the
per-node-search FCTree, with the gap widening on wide datasets (paper:
SAFE averages 0.13× FCTree's and 0.08× TFC's time).
"""

from __future__ import annotations

import pytest

from repro.datasets import load_benchmark
from repro.experiments import fit_method, table5

METHODS = ("FCT", "TFC", "RAND", "IMP", "SAFE")


@pytest.mark.parametrize("method", METHODS)
def test_fit_time_per_method(benchmark, method, bench_gamma, bench_seed):
    """pytest-benchmark timing of each AutoFE method on spambase (M=57)."""
    train, valid, __ = load_benchmark("spambase", scale=0.1, seed=bench_seed)
    benchmark.pedantic(
        fit_method,
        kwargs=dict(name=method, train=train, valid=valid,
                    gamma=bench_gamma, seed=bench_seed),
        rounds=1,
        iterations=1,
    )


def test_table5_ordering_on_wide_dataset(benchmark, bench_gamma, bench_seed):
    """The paper's qualitative ordering: SAFE ≪ TFC, SAFE < FCT on wide M."""
    result = benchmark.pedantic(
        table5.run,
        kwargs=dict(
            datasets=("spambase",),
            methods=METHODS,
            scale=0.1,
            gamma=bench_gamma,
            seed=bench_seed,
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )
    row = result.seconds["spambase"]
    assert row["SAFE"] < row["TFC"], f"SAFE {row['SAFE']:.2f}s vs TFC {row['TFC']:.2f}s"
    assert row["SAFE"] < 2.0 * row["FCT"] + 1.0, (
        f"SAFE {row['SAFE']:.2f}s should be comparable to or below FCT {row['FCT']:.2f}s"
    )
