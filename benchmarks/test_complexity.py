"""Benchmark E9 — empirical check of the Eq. (13) complexity claims.

Paper finding reproduced: SAFE's fit time grows near-linearly with the
number of records (the §IV-D analysis), while TFC's grows quadratically
with the feature count, overtaking SAFE on wide data.
"""

from __future__ import annotations

from repro.experiments import complexity


def test_complexity_scaling(benchmark, bench_seed):
    result = benchmark.pedantic(
        complexity.run,
        kwargs=dict(
            n_values=(1000, 2000, 4000),
            k1_values=(5, 20),
            m_values=(20, 60),
            gamma=25,
            seed=bench_seed,
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )
    # Near-linear in N: allow generous slack for constant-dominated small
    # runs, but rule out quadratic behaviour.
    assert result.n_scaling_exponent < 1.6, (
        f"N-scaling exponent {result.n_scaling_exponent:.2f} suggests "
        "super-linear cost, contradicting Eq. 13"
    )
    # More mining trees must not make SAFE cheaper.
    (k_small, t_small), (k_big, t_big) = result.k1_sweep
    assert t_big >= 0.5 * t_small
    # On wide data TFC's M^2 generation loses to SAFE's path mining.
    m_small, safe_small, tfc_small = result.m_sweep[0]
    m_big, safe_big, tfc_big = result.m_sweep[-1]
    tfc_growth = tfc_big / max(tfc_small, 1e-6)
    safe_growth = safe_big / max(safe_small, 1e-6)
    assert tfc_growth > safe_growth, (
        f"TFC growth {tfc_growth:.1f}x should exceed SAFE growth "
        f"{safe_growth:.1f}x as M goes {m_small}->{m_big}"
    )
