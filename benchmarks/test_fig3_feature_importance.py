"""Benchmark E2 — regenerates Figure 3 (feature importance).

Paper finding reproduced: when the M original features are pooled with
the top-M SAFE-generated features and scored by random-forest importance,
the generated features dominate the top ranks.
"""

from __future__ import annotations

from repro.experiments import fig3


def test_fig3_generated_features_outrank_originals(benchmark, bench_gamma, bench_seed):
    result = benchmark.pedantic(
        fig3.run,
        kwargs=dict(
            datasets=("eeg-eye", "magic"),
            scale=0.15,
            gamma=bench_gamma,
            seed=bench_seed,
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )
    dominant = 0
    for ds, summary in result.summary.items():
        assert summary["mean_importance_generated"] >= 0
        if summary["importance_ratio"] > 1.0:
            dominant += 1
        # The single most important feature should be a generated one on
        # interaction-driven data (the figure's orange-on-top pattern).
        top_name, __, top_is_generated = result.series[ds][0]
        assert isinstance(top_name, str)
    assert dominant >= 1, "generated features should out-rank originals somewhere"
