"""Ablation bench — three-stage selection vs. importance-only.

DESIGN.md design-choice ablation: SAFE's selection pipeline (IV filter →
Pearson de-correlation → importance ranking) is compared with ranking the
raw candidate pool by GBM importance alone. The three-stage pipeline must
produce a *less redundant* feature set (lower maximum pairwise |Pearson|)
at comparable downstream AUC.
"""

from __future__ import annotations

import numpy as np

from repro.core import SAFE, SAFEConfig
from repro.core.selection import rank_by_importance
from repro.datasets import load_benchmark
from repro.metrics import pearson_matrix, roc_auc_score
from repro.models import LogisticRegression
from repro.operators import evaluate_expressions
from repro.tabular.preprocess import clean_matrix


def _max_offdiag_corr(X: np.ndarray) -> float:
    corr = np.abs(pearson_matrix(X))
    mask = ~np.eye(corr.shape[0], dtype=bool)
    return float(corr[mask].max()) if mask.any() else 0.0


def _run(seed: int):
    train, valid, test = load_benchmark("wind", scale=0.15, seed=seed)
    cfg = SAFEConfig(gamma=30, random_state=seed)
    safe = SAFE(cfg)
    psi = safe.fit(train, valid)
    X_full = clean_matrix(evaluate_expressions(list(psi.expressions), train.X))

    # Ablated selector: importance-only over an unfiltered candidate pool
    # built from the same generation stage (originals + raw generated).
    from repro.baselines import RandomGenerator

    raw = RandomGenerator(SAFEConfig(gamma=30, random_state=seed,
                                     pearson_threshold=1.0, iv_threshold=0.0))
    psi_raw = raw.fit(train, valid)
    X_raw = clean_matrix(evaluate_expressions(list(psi_raw.expressions), train.X))

    def auc_of(psi_):
        tr, te = psi_.transform(train), psi_.transform(test)
        clf = LogisticRegression().fit(clean_matrix(tr.X), tr.require_labels())
        return roc_auc_score(te.y, clf.predict_proba(clean_matrix(te.X))[:, 1])

    return {
        "staged_redundancy": _max_offdiag_corr(X_full),
        "ablated_redundancy": _max_offdiag_corr(X_raw),
        "staged_auc": auc_of(psi),
        "ablated_auc": auc_of(psi_raw),
    }


def test_three_stage_selection_reduces_redundancy(benchmark):
    out = benchmark.pedantic(lambda: _run(0), rounds=1, iterations=1)
    # The de-correlation stage must actually bound pairwise correlation.
    assert out["staged_redundancy"] <= 0.8 + 1e-6, (
        f"staged selection left |corr|={out['staged_redundancy']:.3f} > theta"
    )
    # Without the Pearson stage, near-duplicates survive.
    assert out["ablated_redundancy"] >= out["staged_redundancy"] - 0.05
    # And the cleanup does not cost meaningful accuracy.
    assert out["staged_auc"] >= out["ablated_auc"] - 0.05, (
        f"staged AUC {out['staged_auc']:.3f} vs ablated {out['ablated_auc']:.3f}"
    )
