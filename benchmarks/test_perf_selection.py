"""Perf gate for the blocked incremental redundancy kernel (not tier-1).

Run explicitly with ``PYTHONPATH=src python -m pytest -m perf
benchmarks/test_perf_selection.py``. Asserts the acceptance criteria of
the blocked-selection PR: >= 4x speedup over the seed's full-matrix
greedy (complete k x k ``pearson_matrix`` before the IV-ordered scan) on
the 50k-row x 3k-candidate pool, with **identical** kept indices, and a
kept set that actually exercises the incremental panel (the grouped
workload keeps roughly one candidate per latent factor).

The memory-scaling assertion (peak working set stays O((block+kept)*n),
never O(k^2)) lives in the tier-1 suite:
``tests/test_core_selection.py::TestBlockedRedundancyEquivalence::
test_peak_memory_stays_subquadratic``.
"""

from __future__ import annotations

import pytest

import run_perf

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def record():
    return run_perf.run_selection_benchmark()


def test_selection_speedup(record):
    assert record["n_candidates"] == run_perf.SEL_N_COLS
    assert record["speedup"] >= 4.0


def test_kept_indices_identical(record):
    assert record["kept_identical"] is True
    # The grouped workload must keep a non-trivial but heavily pruned
    # set: every latent factor survives (plus the always-kept constant
    # columns), the redundant copies do not.
    assert run_perf.SEL_N_GROUPS <= record["n_kept"] <= run_perf.SEL_N_COLS // 4
