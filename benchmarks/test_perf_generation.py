"""Perf gate for the batched generation engine (excluded from tier-1).

Run explicitly with ``PYTHONPATH=src python -m pytest -m perf
benchmarks/test_perf_generation.py``. Asserts the acceptance criteria of
the CSE-cached forest-evaluation PR: >= 4x on the generation stage
(operator application + candidate-pool materialization) at 20k rows x 60
features with iteration-3-style base expressions, and a bit-identical Ψ
(same expression keys and fitted states, byte-equal candidate matrices
on both the train and valid sets).
"""

from __future__ import annotations

import numpy as np
import pytest

import run_perf

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def workload():
    X, y, combos = run_perf.build_workload()
    ranked, base, X_valid = run_perf.build_generation_workload(combos)
    return X, ranked, base, X_valid


def test_generation_stage_speedup_and_bit_identity(workload):
    X, ranked, base, X_valid = workload
    scalar_s, scalar_out = run_perf.best_of(
        lambda: run_perf.scalar_generation_stage(ranked, base, X, X_valid), 3
    )
    batched_s, batched_out = run_perf.best_of(
        lambda: run_perf.batched_generation_stage(ranked, base, X, X_valid), 3
    )
    s_exprs, s_cand, s_valid = scalar_out
    b_exprs, b_cand, b_valid = batched_out
    assert [e.key for e in b_exprs] == [e.key for e in s_exprs]
    assert [e.state for e in b_exprs] == [e.state for e in s_exprs]
    assert np.array_equal(s_cand, b_cand, equal_nan=True)
    assert np.array_equal(s_valid, b_valid, equal_nan=True)
    assert scalar_s / batched_s >= 4.0


def test_end_to_end_fit_runs_on_engine():
    record = run_perf.run_end_to_end_fit()
    assert record["n_output_features"] >= 1
    assert record["seconds"] > 0
