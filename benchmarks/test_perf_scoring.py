"""Perf gate for the batched scoring engine (excluded from tier-1).

Run explicitly with ``PYTHONPATH=src python -m pytest -m perf
benchmarks/test_perf_scoring.py``. Asserts the acceptance criteria of the
batched-scoring PR: >= 5x combined speedup on ranking + IV at 20k rows x
60 features with numerically equivalent results.
"""

from __future__ import annotations

import pytest

import run_perf

pytestmark = pytest.mark.perf


def test_batched_scoring_speedup_and_equivalence():
    # The generation stage rides along because the combined equivalence
    # flag includes its bit-identity; the other stages have their own
    # gates (test_perf_boosting.py, test_perf_selection.py).
    report = run_perf.main(write_json=False, stages=["scoring", "generation"])
    assert report["equivalent_within_1e-9"]
    assert report["combined_speedup"] >= 5.0
