"""Ablation bench — Algorithm 2's gain-ratio ranking vs. random truncation.

DESIGN.md design-choice ablation: does *sorting* the mined combinations by
information gain ratio (before taking the top γ) actually select better
pairs than randomly truncating the same mined pool? We compare the mean
information value of the features generated from each selection.
"""

from __future__ import annotations

import numpy as np

from repro.core.generation import (
    combinations_from_paths,
    fit_mining_model,
    generate_features,
    rank_combinations,
)
from repro.core.selection import information_values_safe
from repro.datasets import load_benchmark
from repro.operators import Var, evaluate_expressions
from repro.tabular.preprocess import clean_matrix
from repro.utils import check_random_state

GAMMA = 12


def _mean_iv_of_generated(ranked, train):
    base = [Var(i) for i in range(train.n_cols)]
    exprs = generate_features(
        ranked, ("add", "sub", "mul", "div"), base, train.X,
        existing_keys={e.key for e in base},
    )
    if not exprs:
        return 0.0
    block = clean_matrix(evaluate_expressions(exprs, train.X))
    return float(np.mean(information_values_safe(block, train.y, n_bins=10)))


def _run_ablation(seed: int):
    train, valid, __ = load_benchmark("spambase", scale=0.12, seed=seed)
    eval_set = (clean_matrix(valid.X), valid.y) if valid is not None else None
    model = fit_mining_model(
        clean_matrix(train.X), train.require_labels(), eval_set,
        n_estimators=20, max_depth=4, learning_rate=0.3, random_state=seed,
    )
    combos = combinations_from_paths(model.paths(), max_size=2)
    pairs = [c for c in combos if c.size == 2]
    # (a) Algorithm 2: rank by gain ratio, take top gamma.
    ranked = rank_combinations(train.X, train.y, pairs, gamma=GAMMA)
    # (b) Ablated: random gamma-subset of the same mined pool.
    rng = check_random_state(seed + 1)
    picks = rng.choice(len(pairs), size=min(GAMMA, len(pairs)), replace=False)
    from repro.core.generation import RankedCombination

    unranked = [RankedCombination(combination=pairs[k], gain_ratio=0.0) for k in picks]
    return (
        _mean_iv_of_generated(ranked, train),
        _mean_iv_of_generated(unranked, train),
    )


def test_gain_ratio_ranking_beats_random_truncation(benchmark):
    results = benchmark.pedantic(
        lambda: [_run_ablation(seed) for seed in (0, 1, 2)],
        rounds=1,
        iterations=1,
    )
    ranked_mean = float(np.mean([r[0] for r in results]))
    random_mean = float(np.mean([r[1] for r in results]))
    assert ranked_mean >= random_mean - 0.01, (
        f"gain-ratio ranking (mean IV {ranked_mean:.4f}) should not lose to "
        f"random truncation (mean IV {random_mean:.4f})"
    )
