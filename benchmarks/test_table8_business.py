"""Benchmark E6 — regenerates Table VIII (business-scale fraud datasets).

Paper finding reproduced: on large, heavily imbalanced fraud data, SAFE
consistently improves (or at minimum never meaningfully degrades) the AUC
of the production classifiers relative to the original feature space,
while TFC/FCTree are excluded as infeasible — exactly the paper's roster.
"""

from __future__ import annotations

from repro.experiments import table8


def test_table8_fraud_surrogates(benchmark, bench_gamma, bench_seed):
    result = benchmark.pedantic(
        table8.run,
        kwargs=dict(
            datasets=("data1", "data2"),
            methods=("ORIG", "RAND", "IMP", "SAFE"),
            classifiers=("lr", "xgb"),
            scale=0.002,
            gamma=bench_gamma,
            seed=bench_seed,
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )
    for ds, per_method in result.scores.items():
        for clf in ("lr", "xgb"):
            safe = per_method["SAFE"][clf]
            orig = per_method["ORIG"][clf]
            assert safe > orig - 2.0, (
                f"{ds}/{clf}: SAFE {safe:.2f} vs ORIG {orig:.2f}"
            )
        # And SAFE improves for at least one classifier per dataset.
        assert any(
            per_method["SAFE"][clf] > per_method["ORIG"][clf]
            for clf in ("lr", "xgb")
        ), f"{ds}: SAFE should lift at least one classifier"
