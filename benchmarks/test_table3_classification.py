"""Benchmark E1 — regenerates Table III (classification performance).

Paper finding reproduced: SAFE's generated features beat the original
feature space on average across downstream classifiers (paper: +6.50%
average AUC lift over ORIG across 12 datasets and 9 classifiers).
"""

from __future__ import annotations

from repro.experiments import table3


def test_table3_small_grid(benchmark, bench_scale, bench_gamma, bench_seed):
    result = benchmark.pedantic(
        table3.run,
        kwargs=dict(
            datasets=("eeg-eye", "magic"),
            methods=("ORIG", "RAND", "IMP", "SAFE"),
            classifiers=("lr", "svm", "xgb"),
            scale=bench_scale * 2,
            gamma=bench_gamma,
            seed=bench_seed,
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )
    # SAFE lifts AUC over ORIG on average across the grid.
    mean_lift = sum(result.lifts.values()) / len(result.lifts)
    assert mean_lift > 0.0, f"expected positive SAFE-vs-ORIG lift, got {mean_lift:+.2f}%"
    # SAFE is at least competitive with the random-pair ablations.
    for ds, per_method in result.scores.items():
        safe_avg = sum(per_method["SAFE"].values()) / len(per_method["SAFE"])
        rand_avg = sum(per_method["RAND"].values()) / len(per_method["RAND"])
        assert safe_avg > rand_avg - 2.0, f"{ds}: SAFE {safe_avg:.2f} vs RAND {rand_avg:.2f}"


def test_table3_full_method_roster(benchmark, bench_gamma, bench_seed):
    """One dataset, all six methods (including FCT and TFC)."""
    result = benchmark.pedantic(
        table3.run,
        kwargs=dict(
            datasets=("magic",),
            methods=("ORIG", "FCT", "TFC", "RAND", "IMP", "SAFE"),
            classifiers=("lr", "xgb"),
            scale=0.15,
            gamma=bench_gamma,
            seed=bench_seed,
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )
    per_method = result.scores["magic"]
    assert set(per_method) == {"ORIG", "FCT", "TFC", "RAND", "IMP", "SAFE"}
    safe_avg = sum(per_method["SAFE"].values()) / 2
    orig_avg = sum(per_method["ORIG"].values()) / 2
    assert safe_avg > orig_avg
