"""Time the scoring and generation hot paths: scalar (pre-batching) vs batched.

Fixed synthetic workload per the batched-engine acceptance criteria: 20k
rows x 60 features, gamma = 50, beta = 10 IV bins, with a mined-realistic
pool of ~800 feature combinations (singles and pairs, 3-15 pooled split
values per feature). Measures

* the Algorithm 2 ranking stage — scalar reference: fresh
  ``searchsorted`` per (combination, feature) plus the per-cell Python
  entropy loop and duplicated ``np.unique`` passes the seed tree shipped
  with; batched: ``core.scoring.score_combinations``;
* the Algorithm 3 IV stage — scalar reference: per-column quantile
  ``Binner`` refits via ``information_value``; batched:
  ``metrics.batched.information_values_matrix``;
* the generation stage (Algorithm 1 line 6 + candidate materialization)
  — scalar reference: per-arrangement ``fit_applied`` re-evaluating each
  child tree from scratch, then ``np.column_stack`` candidate evaluation
  on the train and valid matrices; batched: the CSE engine
  (``operators.engine.EvalCache`` + vectorized operator kernels in
  ``generate_features`` + ``evaluate_forest`` reuse of generated
  columns). Base expressions are depth-3 composed trees, the iteration
  >= 1 regime where child re-evaluation dominates;
* one end-to-end ``SAFE.fit`` (engine path only — timing record, no
  scalar twin).

Verifies the batched results match the scalar ones (scoring to 1e-9,
generation bit-identical: same expression keys/states and byte-equal
candidate matrices) and writes ``BENCH_perf.json`` at the repo root.

Run: ``PYTHONPATH=src python benchmarks/run_perf.py``
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.generation import (
    Combination,
    RankedCombination,
    _arrangements,
    generate_features,
    rank_combinations,
)
from repro.core.scoring import score_combinations
from repro.metrics.batched import information_values_matrix
from repro.metrics.information import (
    _EPS,
    cells_from_split_values,
    information_value,
)
from repro.operators import (
    Applied,
    EvalCache,
    Var,
    evaluate_forest,
    fit_applied,
    resolve_operators,
)

N_ROWS = 20_000
N_COLS = 60
N_VALID_ROWS = 10_000
GAMMA = 50
IV_BINS = 10
N_COMBOS = 800
SEED = 0
TOL = 1e-9
GENERATION_OPERATORS = (
    # The paper's §V experiment set plus stateless transforms and one
    # stateful operator (audited per-expression fit, not batchable).
    "add", "sub", "mul", "div", "log", "sqrt", "zscore",
)
FIT_N_ROWS = 8_000
FIT_N_COLS = 30
FIT_ITERATIONS = 2
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


# ----------------------------------------------------------------------
# Scalar references: faithful copies of the pre-batching implementations.
# ----------------------------------------------------------------------
def scalar_entropy(values: np.ndarray) -> float:
    __, counts = np.unique(values, return_counts=True)
    p = counts / values.size
    return float(-(p * np.log(np.maximum(p, _EPS))).sum())


def scalar_partition_entropy(y: np.ndarray, cells: np.ndarray) -> float:
    """The seed's per-cell Python loop, verbatim."""
    total = 0.0
    __, inverse, counts = np.unique(cells, return_inverse=True, return_counts=True)
    pos_per_cell = np.bincount(
        inverse, weights=(y == 1).astype(np.float64), minlength=counts.size
    )
    for c in range(counts.size):
        n_c = counts[c]
        p1 = pos_per_cell[c] / n_c
        p0 = 1.0 - p1
        h = 0.0
        for p in (p0, p1):
            if p > 0:
                h -= p * np.log(p)
        total += (n_c / y.size) * h
    return float(total)


def scalar_gain_ratio(y: np.ndarray, cells: np.ndarray) -> float:
    gain = max(0.0, scalar_entropy(y) - scalar_partition_entropy(y, cells))
    split_info = scalar_entropy(cells)
    if split_info <= _EPS:
        return 0.0
    return float(gain / split_info)


def scalar_rank(X: np.ndarray, y: np.ndarray, combos: list) -> np.ndarray:
    out = np.zeros(len(combos))
    for i, combo in enumerate(combos):
        cells = cells_from_split_values(
            X, list(combo.features), [np.asarray(v) for v in combo.split_values]
        )
        out[i] = scalar_gain_ratio(y, cells)
    return out


def scalar_safe_ivs(X: np.ndarray, y: np.ndarray, n_bins: int) -> np.ndarray:
    """The seed's ``information_values_safe``: guard + per-column Binner."""
    ivs = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        col = X[:, j]
        finite = col[np.isfinite(col)]
        if finite.size == 0 or np.all(finite == finite[0]):
            continue
        ivs[j] = information_value(col, y, n_bins=n_bins)
    return ivs


def scalar_generate(ranked, operator_names, base, X, existing):
    """The seed's generation loop: fit_applied re-evaluates child trees
    per arrangement, dedup re-renders the key string per expression."""
    by_arity: dict[int, list] = {}
    for op in resolve_operators(operator_names):
        by_arity.setdefault(op.arity, []).append(op)
    seen = set(existing)
    out = []
    for item in ranked:
        combo = item.combination
        for op in by_arity.get(combo.size, []):
            for arrangement in _arrangements(combo.features, op):
                children = tuple(base[f] for f in arrangement)
                expr = fit_applied(op, children, X)
                key = expr.name(None)  # seed rendered the key per lookup
                if key in seen:
                    continue
                seen.add(key)
                out.append(expr)
    return out


def scalar_evaluate(expressions, X):
    """The seed's evaluate_expressions: column_stack over k tree walks."""
    X = np.asarray(X, dtype=np.float64)
    return np.column_stack([e.evaluate(X) for e in expressions])


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def build_workload() -> tuple[np.ndarray, np.ndarray, list]:
    rng = np.random.default_rng(SEED)
    X = rng.normal(size=(N_ROWS, N_COLS))
    X[:, 10] = np.round(X[:, 10] * 3)  # duplicate-heavy column
    X[rng.random(size=N_ROWS) < 0.02, 11] = np.nan  # sparse missing values
    y = (X[:, 0] * X[:, 1] + 0.5 * X[:, 2] - 0.3 * X[:, 3] > 0).astype(float)
    combos = []
    for __ in range(N_COMBOS):
        k = int(rng.integers(1, 3))
        feats = tuple(sorted(rng.choice(N_COLS, size=k, replace=False).tolist()))
        split_values = tuple(
            tuple(
                sorted(
                    set(
                        np.round(
                            rng.normal(size=int(rng.integers(3, 16))), 3
                        ).tolist()
                    )
                )
            )
            for __ in feats
        )
        combos.append(Combination(features=feats, split_values=split_values))
    return X, y, combos


def build_generation_workload(combos: list) -> tuple:
    """Ranked combos + iteration-3-style base expressions + a valid matrix.

    After a few Algorithm 1 iterations the base expressions are composed
    trees (~13 operator nodes, depth 5) that share subtrees — exactly the
    regime where the seed's per-arrangement tree re-evaluation hurts.
    """
    rng = np.random.default_rng(SEED + 1)
    X_valid = rng.normal(size=(N_VALID_ROWS, N_COLS))

    def mid(i: int) -> Applied:
        # An iteration-2-style survivor over originals (6 operator nodes).
        j = (i + 1) % N_COLS
        k = (i + 7) % N_COLS
        prod = Applied("mul", (Var(i), Var(j)))
        return Applied(
            "div",
            (
                Applied("add", (prod, Applied("log", (Var(k),)))),
                Applied("sqrt", (Var(j),)),
            ),
        )

    # Iteration-3-style bases: combinations of iteration-2 survivors.
    # Each mid(i) appears in two bases, the duplicate-subtree pattern the
    # CSE cache exists for.
    base = [
        Applied("sub", (mid(i), mid((i + 13) % N_COLS))) for i in range(N_COLS)
    ]
    ranked = [
        RankedCombination(combination=c, gain_ratio=1.0 - 0.001 * i)
        for i, c in enumerate(combos[:GAMMA])
    ]
    return ranked, base, X_valid


def scalar_generation_stage(ranked, base, X, X_valid):
    """generate -> candidate pool on train -> candidate pool on valid,
    every step re-walking the expression trees from scratch."""
    existing = {e.name(None) for e in base}
    new_exprs = scalar_generate(ranked, GENERATION_OPERATORS, base, X, existing)
    candidates = list(base) + new_exprs
    X_cand = scalar_evaluate(candidates, X)
    X_valid_cand = scalar_evaluate(candidates, X_valid)
    return new_exprs, X_cand, X_valid_cand


def batched_generation_stage(ranked, base, X, X_valid):
    """Same stage on the CSE engine: columns materialized during
    generation are reused for the candidate pool; the valid-set forest
    shares subtrees through its own cache."""
    cache = EvalCache(X)
    existing = {e.key for e in base}
    new_exprs = generate_features(
        ranked, GENERATION_OPERATORS, base, X, existing, cache=cache
    )
    candidates = list(base) + new_exprs
    X_cand = evaluate_forest(candidates, cache=cache)
    X_valid_cand = evaluate_forest(candidates, X_valid)
    return new_exprs, X_cand, X_valid_cand


def run_end_to_end_fit() -> dict:
    """One engine-path SAFE.fit, recorded for regression tracking."""
    from repro.core import SAFE, SAFEConfig
    from repro.tabular import Dataset

    rng = np.random.default_rng(SEED + 2)
    X = rng.normal(size=(FIT_N_ROWS, FIT_N_COLS))
    y = (X[:, 0] * X[:, 1] + 0.5 * X[:, 2] - 0.3 * X[:, 3] > 0).astype(float)
    train = Dataset.from_arrays(X[: FIT_N_ROWS // 2], y[: FIT_N_ROWS // 2])
    valid = Dataset.from_arrays(X[FIT_N_ROWS // 2 :], y[FIT_N_ROWS // 2 :])
    cfg = SAFEConfig(n_iterations=FIT_ITERATIONS, gamma=30, random_state=0)
    t0 = time.perf_counter()
    psi = SAFE(cfg).fit(train, valid)
    seconds = time.perf_counter() - t0
    return {
        "n_rows": FIT_N_ROWS // 2,
        "n_cols": FIT_N_COLS,
        "n_iterations": FIT_ITERATIONS,
        "seconds": seconds,
        "n_output_features": psi.n_output_features,
    }


def best_of(fn, repeats: int = 3) -> tuple[float, object]:
    best = float("inf")
    result = None
    for __ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def main(write_json: bool = True) -> dict:
    X, y, combos = build_workload()

    scalar_rank_s, scalar_ratios = best_of(lambda: scalar_rank(X, y, combos), 1)
    batched_rank_s, batched_ratios = best_of(
        lambda: score_combinations(X, y, combos), 3
    )
    scalar_iv_s, scalar_ivs = best_of(lambda: scalar_safe_ivs(X, y, IV_BINS), 2)
    batched_iv_s, batched_ivs = best_of(
        lambda: information_values_matrix(X, y, n_bins=IV_BINS), 3
    )

    # Same repeat count on both sides so the best-of comparison is fair.
    ranked_gen, base_exprs, X_valid = build_generation_workload(combos)
    scalar_gen_s, scalar_gen_out = best_of(
        lambda: scalar_generation_stage(ranked_gen, base_exprs, X, X_valid), 3
    )
    batched_gen_s, batched_gen_out = best_of(
        lambda: batched_generation_stage(ranked_gen, base_exprs, X, X_valid), 3
    )
    s_exprs, s_cand, s_valid = scalar_gen_out
    b_exprs, b_cand, b_valid = batched_gen_out
    generation_identical = (
        [e.key for e in s_exprs] == [e.key for e in b_exprs]
        and [e.state for e in s_exprs] == [e.state for e in b_exprs]
        and np.array_equal(s_cand, b_cand, equal_nan=True)
        and np.array_equal(s_valid, b_valid, equal_nan=True)
    )

    rank_err = float(np.abs(scalar_ratios - batched_ratios).max())
    iv_err = float(np.abs(scalar_ivs - batched_ivs).max())
    equivalent = rank_err <= TOL and iv_err <= TOL and generation_identical

    # gamma only truncates the sorted output; include it so the measured
    # stage is exactly what the pipeline runs.
    ranked = rank_combinations(X, y, combos, gamma=GAMMA)
    assert len(ranked) == GAMMA

    combined = (scalar_rank_s + scalar_iv_s) / (batched_rank_s + batched_iv_s)
    report = {
        "workload": {
            "n_rows": N_ROWS,
            "n_cols": N_COLS,
            "gamma": GAMMA,
            "iv_bins": IV_BINS,
            "n_combinations": N_COMBOS,
            "seed": SEED,
        },
        "ranking": {
            "scalar_seconds": scalar_rank_s,
            "batched_seconds": batched_rank_s,
            "speedup": scalar_rank_s / batched_rank_s,
            "max_abs_diff": rank_err,
        },
        "information_value": {
            "scalar_seconds": scalar_iv_s,
            "batched_seconds": batched_iv_s,
            "speedup": scalar_iv_s / batched_iv_s,
            "max_abs_diff": iv_err,
        },
        "generation": {
            "n_combinations": GAMMA,
            "n_valid_rows": N_VALID_ROWS,
            "operators": list(GENERATION_OPERATORS),
            "n_generated": len(b_exprs),
            "scalar_seconds": scalar_gen_s,
            "batched_seconds": batched_gen_s,
            "speedup": scalar_gen_s / batched_gen_s,
            "bit_identical": generation_identical,
        },
        "end_to_end_fit": run_end_to_end_fit(),
        "combined_speedup": combined,
        "equivalent_within_1e-9": equivalent,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    if write_json:
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"ranking: {scalar_rank_s:.3f}s -> {batched_rank_s:.3f}s "
        f"({report['ranking']['speedup']:.1f}x)"
    )
    print(
        f"IV:      {scalar_iv_s:.3f}s -> {batched_iv_s:.3f}s "
        f"({report['information_value']['speedup']:.1f}x)"
    )
    print(
        f"generation: {scalar_gen_s:.3f}s -> {batched_gen_s:.3f}s "
        f"({report['generation']['speedup']:.1f}x)  "
        f"bit-identical: {generation_identical}"
    )
    print(f"end-to-end fit: {report['end_to_end_fit']['seconds']:.3f}s")
    print(f"combined: {combined:.2f}x   equivalent: {equivalent}")
    if write_json:
        print(f"wrote {RESULT_PATH}")
    return report


if __name__ == "__main__":
    report = main()
    ok = (
        report["equivalent_within_1e-9"]
        and report["combined_speedup"] >= 5.0
        and report["generation"]["speedup"] >= 4.0
        and report["generation"]["bit_identical"]
    )
    sys.exit(0 if ok else 1)
