"""Time the two scoring hot paths: scalar (pre-batching) vs batched.

Fixed synthetic workload per the batched-scoring-engine acceptance
criteria: 20k rows x 60 features, gamma = 50, beta = 10 IV bins, with a
mined-realistic pool of ~800 feature combinations (singles and pairs,
3-15 pooled split values per feature). Measures

* the Algorithm 2 ranking stage — scalar reference: fresh
  ``searchsorted`` per (combination, feature) plus the per-cell Python
  entropy loop and duplicated ``np.unique`` passes the seed tree shipped
  with; batched: ``core.scoring.score_combinations``;
* the Algorithm 3 IV stage — scalar reference: per-column quantile
  ``Binner`` refits via ``information_value``; batched:
  ``metrics.batched.information_values_matrix``;

verifies the batched results match the scalar ones to 1e-9, and writes
``BENCH_perf.json`` at the repo root.

Run: ``PYTHONPATH=src python benchmarks/run_perf.py``
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.generation import Combination, rank_combinations
from repro.core.scoring import score_combinations
from repro.metrics.batched import information_values_matrix
from repro.metrics.information import (
    _EPS,
    cells_from_split_values,
    information_value,
)

N_ROWS = 20_000
N_COLS = 60
GAMMA = 50
IV_BINS = 10
N_COMBOS = 800
SEED = 0
TOL = 1e-9
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


# ----------------------------------------------------------------------
# Scalar references: faithful copies of the pre-batching implementations.
# ----------------------------------------------------------------------
def scalar_entropy(values: np.ndarray) -> float:
    __, counts = np.unique(values, return_counts=True)
    p = counts / values.size
    return float(-(p * np.log(np.maximum(p, _EPS))).sum())


def scalar_partition_entropy(y: np.ndarray, cells: np.ndarray) -> float:
    """The seed's per-cell Python loop, verbatim."""
    total = 0.0
    __, inverse, counts = np.unique(cells, return_inverse=True, return_counts=True)
    pos_per_cell = np.bincount(
        inverse, weights=(y == 1).astype(np.float64), minlength=counts.size
    )
    for c in range(counts.size):
        n_c = counts[c]
        p1 = pos_per_cell[c] / n_c
        p0 = 1.0 - p1
        h = 0.0
        for p in (p0, p1):
            if p > 0:
                h -= p * np.log(p)
        total += (n_c / y.size) * h
    return float(total)


def scalar_gain_ratio(y: np.ndarray, cells: np.ndarray) -> float:
    gain = max(0.0, scalar_entropy(y) - scalar_partition_entropy(y, cells))
    split_info = scalar_entropy(cells)
    if split_info <= _EPS:
        return 0.0
    return float(gain / split_info)


def scalar_rank(X: np.ndarray, y: np.ndarray, combos: list) -> np.ndarray:
    out = np.zeros(len(combos))
    for i, combo in enumerate(combos):
        cells = cells_from_split_values(
            X, list(combo.features), [np.asarray(v) for v in combo.split_values]
        )
        out[i] = scalar_gain_ratio(y, cells)
    return out


def scalar_safe_ivs(X: np.ndarray, y: np.ndarray, n_bins: int) -> np.ndarray:
    """The seed's ``information_values_safe``: guard + per-column Binner."""
    ivs = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        col = X[:, j]
        finite = col[np.isfinite(col)]
        if finite.size == 0 or np.all(finite == finite[0]):
            continue
        ivs[j] = information_value(col, y, n_bins=n_bins)
    return ivs


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def build_workload() -> tuple[np.ndarray, np.ndarray, list]:
    rng = np.random.default_rng(SEED)
    X = rng.normal(size=(N_ROWS, N_COLS))
    X[:, 10] = np.round(X[:, 10] * 3)  # duplicate-heavy column
    X[rng.random(size=N_ROWS) < 0.02, 11] = np.nan  # sparse missing values
    y = (X[:, 0] * X[:, 1] + 0.5 * X[:, 2] - 0.3 * X[:, 3] > 0).astype(float)
    combos = []
    for __ in range(N_COMBOS):
        k = int(rng.integers(1, 3))
        feats = tuple(sorted(rng.choice(N_COLS, size=k, replace=False).tolist()))
        split_values = tuple(
            tuple(
                sorted(
                    set(
                        np.round(
                            rng.normal(size=int(rng.integers(3, 16))), 3
                        ).tolist()
                    )
                )
            )
            for __ in feats
        )
        combos.append(Combination(features=feats, split_values=split_values))
    return X, y, combos


def best_of(fn, repeats: int = 3) -> tuple[float, object]:
    best = float("inf")
    result = None
    for __ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def main(write_json: bool = True) -> dict:
    X, y, combos = build_workload()

    scalar_rank_s, scalar_ratios = best_of(lambda: scalar_rank(X, y, combos), 1)
    batched_rank_s, batched_ratios = best_of(
        lambda: score_combinations(X, y, combos), 3
    )
    scalar_iv_s, scalar_ivs = best_of(lambda: scalar_safe_ivs(X, y, IV_BINS), 2)
    batched_iv_s, batched_ivs = best_of(
        lambda: information_values_matrix(X, y, n_bins=IV_BINS), 3
    )

    rank_err = float(np.abs(scalar_ratios - batched_ratios).max())
    iv_err = float(np.abs(scalar_ivs - batched_ivs).max())
    equivalent = rank_err <= TOL and iv_err <= TOL

    # gamma only truncates the sorted output; include it so the measured
    # stage is exactly what the pipeline runs.
    ranked = rank_combinations(X, y, combos, gamma=GAMMA)
    assert len(ranked) == GAMMA

    combined = (scalar_rank_s + scalar_iv_s) / (batched_rank_s + batched_iv_s)
    report = {
        "workload": {
            "n_rows": N_ROWS,
            "n_cols": N_COLS,
            "gamma": GAMMA,
            "iv_bins": IV_BINS,
            "n_combinations": N_COMBOS,
            "seed": SEED,
        },
        "ranking": {
            "scalar_seconds": scalar_rank_s,
            "batched_seconds": batched_rank_s,
            "speedup": scalar_rank_s / batched_rank_s,
            "max_abs_diff": rank_err,
        },
        "information_value": {
            "scalar_seconds": scalar_iv_s,
            "batched_seconds": batched_iv_s,
            "speedup": scalar_iv_s / batched_iv_s,
            "max_abs_diff": iv_err,
        },
        "combined_speedup": combined,
        "equivalent_within_1e-9": equivalent,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    if write_json:
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"ranking: {scalar_rank_s:.3f}s -> {batched_rank_s:.3f}s "
        f"({report['ranking']['speedup']:.1f}x)"
    )
    print(
        f"IV:      {scalar_iv_s:.3f}s -> {batched_iv_s:.3f}s "
        f"({report['information_value']['speedup']:.1f}x)"
    )
    print(f"combined: {combined:.2f}x   equivalent: {equivalent}")
    if write_json:
        print(f"wrote {RESULT_PATH}")
    return report


if __name__ == "__main__":
    report = main()
    ok = report["equivalent_within_1e-9"] and report["combined_speedup"] >= 5.0
    sys.exit(0 if ok else 1)
