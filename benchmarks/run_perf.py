"""Time the scoring and generation hot paths: scalar (pre-batching) vs batched.

Fixed synthetic workload per the batched-engine acceptance criteria: 20k
rows x 60 features, gamma = 50, beta = 10 IV bins, with a mined-realistic
pool of ~800 feature combinations (singles and pairs, 3-15 pooled split
values per feature). Measures

* the Algorithm 2 ranking stage — scalar reference: fresh
  ``searchsorted`` per (combination, feature) plus the per-cell Python
  entropy loop and duplicated ``np.unique`` passes the seed tree shipped
  with; batched: ``core.scoring.score_combinations``;
* the Algorithm 3 IV stage — scalar reference: per-column quantile
  ``Binner`` refits via ``information_value``; batched:
  ``metrics.batched.information_values_matrix``;
* the generation stage (Algorithm 1 line 6 + candidate materialization)
  — scalar reference: per-arrangement ``fit_applied`` re-evaluating each
  child tree from scratch, then ``np.column_stack`` candidate evaluation
  on the train and valid matrices; batched: the CSE engine
  (``operators.engine.EvalCache`` + vectorized operator kernels in
  ``generate_features`` + ``evaluate_forest`` reuse of generated
  columns). Base expressions are depth-3 composed trees, the iteration
  >= 1 regime where child re-evaluation dominates;
* one end-to-end ``SAFE.fit`` (engine path only — timing record, no
  scalar twin);
* the combination-mining GBM itself — scalar reference: the seed's
  depth-first tree grower (fresh flattened ``bincount`` + ``np.repeat``
  temporaries per node, raw-``X`` re-descent for every margin and
  eval-set update); fast path: histogram-subtraction level growth with
  fit-time leaf gathers and a once-per-fit binned eval set
  (``boosting.tree`` / ``boosting.gbm``). Two configurations: the
  headline stochastic workload (``subsample=0.5``, Friedman-style
  stochastic boosting with deep trees, where the subsample bugfix also
  shrinks the partitions) and a parity twin (``subsample=1.0``) whose
  *training* margins must be **bit-identical** to the seed path (eval
  margins can deviate marginally: candidate splits with exactly equal
  gain — the same train partition reached through different features —
  may resolve differently under histogram-subtraction float noise,
  which train rows cannot observe but off-train rows can).

* the selection stage (Algorithm 4 redundancy removal) — seed reference:
  faithful copy of the full-matrix greedy (complete k x k
  ``pearson_matrix``, then the IV-ordered kept-scan); fast path: the
  blocked incremental Gram kernel
  (``core.redundancy.remove_redundant_features_blocked``) on a
  50k-row x 3k-candidate pool with grouped correlation structure plus
  constant/near-constant/duplicate/NaN pathologies. Kept indices must be
  **identical**.

Verifies the batched results match the scalar ones (scoring to 1e-9,
generation bit-identical: same expression keys/states and byte-equal
candidate matrices; boosting parity margins byte-equal; selection kept
indices identical) and writes ``BENCH_perf.json`` at the repo root.

Run: ``PYTHONPATH=src python benchmarks/run_perf.py``

A single workload can be re-timed and merged into the existing
``BENCH_perf.json`` without re-running the others:
``PYTHONPATH=src python benchmarks/run_perf.py --stage selection``
(repeatable; stages: scoring, generation, boosting, end_to_end,
selection, fit_stream, fit_recovery).

The ``fit_stream`` stage is the out-of-core acceptance run: a SAFE.fit
over a 5M-row ``.npy``-memmapped ``ChunkedDataset`` recording rows/sec
and the tracemalloc peak, gated on that peak staying at least 8x under
the bytes materializing the matrix would cost, with an exact-sketch
Ψ-parity sub-record (streaming vs in-memory, bit-identical keys) at
reduced scale.

The ``fit_recovery`` stage is the crash-safety acceptance run: it
records resume-vs-refit wall time after a failpoint kill (gate: resume
>= 3x faster) and the chunk-manifest verification overhead on a clean
fit (gate: <= 10%).
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.generation import (
    Combination,
    RankedCombination,
    _arrangements,
    generate_features,
    rank_combinations,
)
from repro.core.redundancy import remove_redundant_features_blocked
from repro.core.scoring import score_combinations
from repro.metrics.batched import information_values_matrix
from repro.metrics.information import (
    _EPS,
    cells_from_split_values,
    information_value,
    pearson_matrix,
)
from repro.operators import (
    Applied,
    EvalCache,
    Var,
    evaluate_forest,
    fit_applied,
    resolve_operators,
)

N_ROWS = 20_000
N_COLS = 60
N_VALID_ROWS = 10_000
GAMMA = 50
IV_BINS = 10
N_COMBOS = 800
SEED = 0
TOL = 1e-9
GENERATION_OPERATORS = (
    # The paper's §V experiment set plus stateless transforms and one
    # stateful operator (audited per-expression fit, not batchable).
    "add", "sub", "mul", "div", "log", "sqrt", "zscore",
)
FIT_N_ROWS = 8_000
FIT_N_COLS = 30
FIT_ITERATIONS = 2
BOOST_N_ESTIMATORS = 40
BOOST_MAX_DEPTH = 7
BOOST_MAX_BINS = 32
BOOST_LEARNING_RATE = 0.1
BOOST_SUBSAMPLE = 0.5  # Friedman-style stochastic gradient boosting
BOOST_N_EVAL_ROWS = 10_000
# XGBoost-style stopping: only min_child_weight binds, so the fast path
# never accumulates a per-bin count channel.
BOOST_MIN_SAMPLES_LEAF = 0
BOOST_MIN_CHILD_WEIGHT = 1e-3
SEL_N_ROWS = 50_000
SEL_N_COLS = 3_000
SEL_N_GROUPS = 150
SEL_NOISE = 0.35  # within-group |corr| ~ 1/(1+sigma^2) ~ 0.89 > theta
SEL_THETA = 0.8
SEL_BLOCK_SIZE = 512
FS_N_ROWS = 5_000_000
FS_N_COLS = 8
FS_CHUNK_ROWS = 8_192
#: Fixed out-of-core ceiling: one eighth of the materialized matrix.
FS_PEAK_CEILING_BYTES = FS_N_ROWS * FS_N_COLS * 8 // 8
FS_PARITY_ROWS = 200_000
FR_N_ROWS = 100_000
FR_ITERATIONS = 4
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


# ----------------------------------------------------------------------
# Scalar references: faithful copies of the pre-batching implementations.
# ----------------------------------------------------------------------
def scalar_entropy(values: np.ndarray) -> float:
    __, counts = np.unique(values, return_counts=True)
    p = counts / values.size
    return float(-(p * np.log(np.maximum(p, _EPS))).sum())


def scalar_partition_entropy(y: np.ndarray, cells: np.ndarray) -> float:
    """The seed's per-cell Python loop, verbatim."""
    total = 0.0
    __, inverse, counts = np.unique(cells, return_inverse=True, return_counts=True)
    pos_per_cell = np.bincount(
        inverse, weights=(y == 1).astype(np.float64), minlength=counts.size
    )
    for c in range(counts.size):
        n_c = counts[c]
        p1 = pos_per_cell[c] / n_c
        p0 = 1.0 - p1
        h = 0.0
        for p in (p0, p1):
            if p > 0:
                h -= p * np.log(p)
        total += (n_c / y.size) * h
    return float(total)


def scalar_gain_ratio(y: np.ndarray, cells: np.ndarray) -> float:
    gain = max(0.0, scalar_entropy(y) - scalar_partition_entropy(y, cells))
    split_info = scalar_entropy(cells)
    if split_info <= _EPS:
        return 0.0
    return float(gain / split_info)


def scalar_rank(X: np.ndarray, y: np.ndarray, combos: list) -> np.ndarray:
    out = np.zeros(len(combos))
    for i, combo in enumerate(combos):
        cells = cells_from_split_values(
            X, list(combo.features), [np.asarray(v) for v in combo.split_values]
        )
        out[i] = scalar_gain_ratio(y, cells)
    return out


def scalar_safe_ivs(X: np.ndarray, y: np.ndarray, n_bins: int) -> np.ndarray:
    """The seed's ``information_values_safe``: guard + per-column Binner."""
    ivs = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        col = X[:, j]
        finite = col[np.isfinite(col)]
        if finite.size == 0 or np.all(finite == finite[0]):
            continue
        ivs[j] = information_value(col, y, n_bins=n_bins)
    return ivs


def scalar_generate(ranked, operator_names, base, X, existing):
    """The seed's generation loop: fit_applied re-evaluates child trees
    per arrangement, dedup re-renders the key string per expression."""
    by_arity: dict[int, list] = {}
    for op in resolve_operators(operator_names):
        by_arity.setdefault(op.arity, []).append(op)
    seen = set(existing)
    out = []
    for item in ranked:
        combo = item.combination
        for op in by_arity.get(combo.size, []):
            for arrangement in _arrangements(combo.features, op):
                children = tuple(base[f] for f in arrangement)
                expr = fit_applied(op, children, X)
                key = expr.name(None)  # seed rendered the key per lookup
                if key in seen:
                    continue
                seen.add(key)
                out.append(expr)
    return out


def scalar_evaluate(expressions, X):
    """The seed's evaluate_expressions: column_stack over k tree walks."""
    X = np.asarray(X, dtype=np.float64)
    return np.column_stack([e.evaluate(X) for e in expressions])


class SeedTree:
    """Faithful copy of the seed's depth-first regression-tree grower.

    Per popped node it rebuilds every feature histogram from the node's
    rows with one flattened ``bincount`` over ``np.repeat``-expanded
    gradient/hessian weights, and prediction re-descends raw floats
    (NaN right via comparison only — the pre-fix default-direction rule).

    ``tests/test_boosting_tree.py::_reference_grow`` is a deliberately
    independent copy of the same seed semantics (kept separate so a bug
    slipped into one oracle cannot silently propagate to the other); a
    change to the reference semantics must be mirrored there.
    """

    def __init__(self, max_depth, min_samples_leaf, min_child_weight, reg_lambda, gamma):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.gamma = gamma

    def fit(self, codes, edges, grad, hess):
        n_rows, n_cols = codes.shape
        stride = max(len(e) for e in edges) + 2 if edges else 2
        offsets = (np.arange(n_cols, dtype=np.int64) * stride)[None, :]
        codes_offset = codes + offsets
        n_edges = np.array([len(e) for e in edges], dtype=np.int64)
        nodes = []

        def new_node(depth, idx):
            nodes.append(
                {"feature": -1, "threshold": np.nan, "left": -1, "right": -1,
                 "value": 0.0, "_depth": depth, "_idx": idx}
            )
            return len(nodes) - 1

        stack = [new_node(0, np.arange(n_rows))]
        while stack:
            node = nodes[stack.pop()]
            idx = node["_idx"]
            g_sum = float(grad[idx].sum())
            h_sum = float(hess[idx].sum())
            node["value"] = -g_sum / (h_sum + self.reg_lambda)
            if (
                node["_depth"] >= self.max_depth
                or idx.size < 2 * self.min_samples_leaf
                or h_sum < 2 * self.min_child_weight
            ):
                continue
            flat = codes_offset[idx].ravel()
            length = n_cols * stride
            g_hist = np.bincount(
                flat, weights=np.repeat(grad[idx], n_cols), minlength=length
            ).reshape(n_cols, stride)
            h_hist = np.bincount(
                flat, weights=np.repeat(hess[idx], n_cols), minlength=length
            ).reshape(n_cols, stride)
            c_hist = np.bincount(flat, minlength=length).reshape(n_cols, stride)
            gl = np.cumsum(g_hist, axis=1)[:, :-1]
            hl = np.cumsum(h_hist, axis=1)[:, :-1]
            cl = np.cumsum(c_hist, axis=1)[:, :-1]
            gr = g_sum - gl
            hr = h_sum - hl
            cr = idx.size - cl
            parent_term = g_sum * g_sum / (h_sum + self.reg_lambda)
            gains = 0.5 * (
                gl * gl / (hl + self.reg_lambda)
                + gr * gr / (hr + self.reg_lambda)
                - parent_term
            ) - self.gamma
            valid = (
                (cl >= self.min_samples_leaf)
                & (cr >= self.min_samples_leaf)
                & (hl >= self.min_child_weight)
                & (hr >= self.min_child_weight)
                & (np.arange(stride - 1)[None, :] <= n_edges[:, None])
            )
            gains = np.where(valid, gains, -np.inf)
            best_flat = int(np.argmax(gains))
            j, b = divmod(best_flat, stride - 1)
            if not np.isfinite(gains[j, b]) or gains[j, b] <= 0:
                continue
            threshold = float(edges[j][b]) if b < len(edges[j]) else np.inf
            go_left = codes[idx, j] <= b
            left_idx = idx[go_left]
            right_idx = idx[~go_left]
            if left_idx.size == 0 or right_idx.size == 0:
                continue
            node["feature"] = j
            node["threshold"] = threshold
            left_id = new_node(node["_depth"] + 1, left_idx)
            right_id = new_node(node["_depth"] + 1, right_idx)
            node["left"] = left_id
            node["right"] = right_id
            stack.append(left_id)
            stack.append(right_id)

        self.feature = np.array([n["feature"] for n in nodes], dtype=np.int64)
        self.threshold = np.array([n["threshold"] for n in nodes])
        self.left = np.array([n["left"] for n in nodes], dtype=np.int64)
        self.right = np.array([n["right"] for n in nodes], dtype=np.int64)
        self.value = np.array([n["value"] for n in nodes])
        return self

    def predict(self, X):
        node_ids = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature[node_ids] >= 0
        while active.any():
            rows = np.flatnonzero(active)
            nid = node_ids[rows]
            go_left = X[rows, self.feature[nid]] <= self.threshold[nid]
            node_ids[rows] = np.where(go_left, self.left[nid], self.right[nid])
            active[rows] = self.feature[node_ids[rows]] >= 0
        return self.value[node_ids]


def seed_gbm_fit(X, y, eval_set, subsample):
    """Faithful copy of the seed boosting loop around :class:`SeedTree`.

    Row subsampling zero-weights dropped rows (the pre-fix phantom-row
    behaviour), every margin update re-descends raw ``X``, and the eval
    set is re-descended on raw floats each round.
    """
    from repro.boosting.losses import get_loss
    from repro.tabular.binning import quantile_codes_matrix

    loss = get_loss("logistic")
    rng = np.random.default_rng(SEED)
    codes, edges = quantile_codes_matrix(X, max_bins=BOOST_MAX_BINS)
    codes = np.ascontiguousarray(codes)  # the seed built C-ordered codes
    base_score = loss.base_score(y)
    margin = np.full(X.shape[0], base_score)
    X_eval, y_eval = eval_set
    eval_margin = np.full(X_eval.shape[0], base_score)
    trees = []
    n_rows = X.shape[0]
    for __ in range(BOOST_N_ESTIMATORS):
        grad, hess = loss.grad_hess(y, margin)
        if subsample < 1.0:
            keep = rng.random(n_rows) < subsample
            if not keep.any():
                keep[rng.integers(0, n_rows)] = True
            grad = np.where(keep, grad, 0.0)
            hess = np.where(keep, hess, 0.0)
        tree = SeedTree(
            max_depth=BOOST_MAX_DEPTH,
            min_samples_leaf=BOOST_MIN_SAMPLES_LEAF,
            min_child_weight=BOOST_MIN_CHILD_WEIGHT,
            reg_lambda=1.0,
            gamma=0.0,
        ).fit(codes, edges, grad, hess)
        trees.append(tree)
        margin += BOOST_LEARNING_RATE * tree.predict(X)
        eval_margin += BOOST_LEARNING_RATE * tree.predict(X_eval)
        loss.loss(y_eval, eval_margin)
    return margin, eval_margin, trees


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=1)
def build_workload() -> tuple[np.ndarray, np.ndarray, list]:
    """Deterministic shared workload (memoized: the scoring, generation
    and boosting stages all read the same matrices and never mutate
    them, so one build serves a full multi-stage run)."""
    rng = np.random.default_rng(SEED)
    X = rng.normal(size=(N_ROWS, N_COLS))
    X[:, 10] = np.round(X[:, 10] * 3)  # duplicate-heavy column
    X[rng.random(size=N_ROWS) < 0.02, 11] = np.nan  # sparse missing values
    y = (X[:, 0] * X[:, 1] + 0.5 * X[:, 2] - 0.3 * X[:, 3] > 0).astype(float)
    combos = []
    for __ in range(N_COMBOS):
        k = int(rng.integers(1, 3))
        feats = tuple(sorted(rng.choice(N_COLS, size=k, replace=False).tolist()))
        split_values = tuple(
            tuple(
                sorted(
                    set(
                        np.round(
                            rng.normal(size=int(rng.integers(3, 16))), 3
                        ).tolist()
                    )
                )
            )
            for __ in feats
        )
        combos.append(Combination(features=feats, split_values=split_values))
    return X, y, combos


def build_generation_workload(combos: list) -> tuple:
    """Ranked combos + iteration-3-style base expressions + a valid matrix.

    After a few Algorithm 1 iterations the base expressions are composed
    trees (~13 operator nodes, depth 5) that share subtrees — exactly the
    regime where the seed's per-arrangement tree re-evaluation hurts.
    """
    rng = np.random.default_rng(SEED + 1)
    X_valid = rng.normal(size=(N_VALID_ROWS, N_COLS))

    def mid(i: int) -> Applied:
        # An iteration-2-style survivor over originals (6 operator nodes).
        j = (i + 1) % N_COLS
        k = (i + 7) % N_COLS
        prod = Applied("mul", (Var(i), Var(j)))
        return Applied(
            "div",
            (
                Applied("add", (prod, Applied("log", (Var(k),)))),
                Applied("sqrt", (Var(j),)),
            ),
        )

    # Iteration-3-style bases: combinations of iteration-2 survivors.
    # Each mid(i) appears in two bases, the duplicate-subtree pattern the
    # CSE cache exists for.
    base = [
        Applied("sub", (mid(i), mid((i + 13) % N_COLS))) for i in range(N_COLS)
    ]
    ranked = [
        RankedCombination(combination=c, gain_ratio=1.0 - 0.001 * i)
        for i, c in enumerate(combos[:GAMMA])
    ]
    return ranked, base, X_valid


def scalar_generation_stage(ranked, base, X, X_valid):
    """generate -> candidate pool on train -> candidate pool on valid,
    every step re-walking the expression trees from scratch."""
    existing = {e.name(None) for e in base}
    new_exprs = scalar_generate(ranked, GENERATION_OPERATORS, base, X, existing)
    candidates = list(base) + new_exprs
    X_cand = scalar_evaluate(candidates, X)
    X_valid_cand = scalar_evaluate(candidates, X_valid)
    return new_exprs, X_cand, X_valid_cand


def batched_generation_stage(ranked, base, X, X_valid):
    """Same stage on the CSE engine: columns materialized during
    generation are reused for the candidate pool; the valid-set forest
    shares subtrees through its own cache."""
    cache = EvalCache(X)
    existing = {e.key for e in base}
    new_exprs = generate_features(
        ranked, GENERATION_OPERATORS, base, X, existing, cache=cache
    )
    candidates = list(base) + new_exprs
    X_cand = evaluate_forest(candidates, cache=cache)
    X_valid_cand = evaluate_forest(candidates, X_valid)
    return new_exprs, X_cand, X_valid_cand


def build_boosting_workload() -> tuple:
    """Train/eval matrices for the GBM workload (20k x 60, deep trees).

    Reuses the scoring workload's matrix (duplicate-heavy column 10,
    sparse NaNs in column 11) plus a fresh finite eval set.
    """
    X, y, __ = build_workload()
    rng = np.random.default_rng(SEED + 3)
    X_eval = rng.normal(size=(BOOST_N_EVAL_ROWS, N_COLS))
    y_eval = (
        X_eval[:, 0] * X_eval[:, 1] + 0.5 * X_eval[:, 2] - 0.3 * X_eval[:, 3] > 0
    ).astype(float)
    return X, y, X_eval, y_eval


def fast_gbm_fit(X, y, eval_set, subsample):
    """The histogram-subtraction path: one ``GradientBoostingClassifier.fit``."""
    from repro.boosting import GradientBoostingClassifier

    model = GradientBoostingClassifier(
        n_estimators=BOOST_N_ESTIMATORS,
        max_depth=BOOST_MAX_DEPTH,
        learning_rate=BOOST_LEARNING_RATE,
        max_bins=BOOST_MAX_BINS,
        min_samples_leaf=BOOST_MIN_SAMPLES_LEAF,
        min_child_weight=BOOST_MIN_CHILD_WEIGHT,
        subsample=subsample,
        random_state=SEED,
    ).fit(X, y, eval_set=eval_set)
    return model


def run_boosting_benchmark(repeats: int = 2) -> dict:
    """Seed-path vs histogram-subtraction GBM training, both configs.

    Headline: the stochastic workload (``subsample=0.5``; the subsample
    bugfix also means the fast path trains on true sub-partitions).
    Parity: ``subsample=1.0``, where tree growth semantics are unchanged
    and final training margins must be bit-identical to the seed path.
    """
    X, y, X_eval, y_eval = build_boosting_workload()
    eval_set = (X_eval, y_eval)

    seed_s, seed_out = best_of(
        lambda: seed_gbm_fit(X, y, eval_set, BOOST_SUBSAMPLE), repeats
    )
    fast_s, fast_model = best_of(
        lambda: fast_gbm_fit(X, y, eval_set, BOOST_SUBSAMPLE), repeats
    )
    parity_seed_s, parity_seed_out = best_of(
        lambda: seed_gbm_fit(X, y, eval_set, 1.0), repeats
    )
    parity_fast_s, parity_fast_model = best_of(
        lambda: fast_gbm_fit(X, y, eval_set, 1.0), repeats
    )
    parity_margin = parity_fast_model.decision_function(X)
    bit_identical = bool(np.array_equal(parity_seed_out[0], parity_margin))
    eval_diff = float(
        np.abs(parity_seed_out[1] - parity_fast_model.decision_function(X_eval)).max()
    )
    return {
        "n_rows": N_ROWS,
        "n_cols": N_COLS,
        "n_estimators": BOOST_N_ESTIMATORS,
        "max_depth": BOOST_MAX_DEPTH,
        "max_bins": BOOST_MAX_BINS,
        "subsample": BOOST_SUBSAMPLE,
        "n_eval_rows": BOOST_N_EVAL_ROWS,
        "n_trees": len(fast_model.trees_),
        "seed_seconds": seed_s,
        "fast_seconds": fast_s,
        "speedup": seed_s / fast_s,
        "parity": {
            "subsample": 1.0,
            "seed_seconds": parity_seed_s,
            "fast_seconds": parity_fast_s,
            "speedup": parity_seed_s / parity_fast_s,
            "train_margins_bit_identical": bit_identical,
            "eval_margin_max_abs_diff": eval_diff,
        },
    }


def seed_remove_redundant(X: np.ndarray, ivs: np.ndarray, theta: float) -> np.ndarray:
    """Faithful copy of the seed's full-matrix Algorithm 4 greedy.

    Materializes the complete k x k |Pearson| matrix (O(k^2 * n) flops,
    O(k^2) memory) before the IV-ordered kept-scan — the path the blocked
    incremental kernel replaces.
    """
    corr = np.abs(pearson_matrix(X))
    order = np.lexsort((np.arange(ivs.size), -ivs))
    kept: list[int] = []
    for j in order:
        if not kept or corr[j, kept].max() <= theta:
            kept.append(int(j))
    kept.sort()
    return np.asarray(kept, dtype=np.int64)


def build_selection_workload() -> tuple[np.ndarray, np.ndarray]:
    """50k x 3k candidate pool with production-shaped redundancy.

    Candidates are noisy copies of ``SEL_N_GROUPS`` latent factors, so
    each group's highest-IV member should survive and the rest should be
    rejected against it — the regime where the greedy's kept set stays
    far smaller than the candidate pool. Pathological columns (constant,
    noise-floor constant, exact duplicates, sparse NaN) and IV ties are
    mixed in; the kept indices must match the full-matrix path on all of
    them.
    """
    rng = np.random.default_rng(SEED + 4)
    factors = rng.normal(size=(SEL_N_ROWS, SEL_N_GROUPS))
    groups = rng.integers(0, SEL_N_GROUPS, size=SEL_N_COLS)
    X = factors[:, groups]
    X += SEL_NOISE * rng.normal(size=(SEL_N_ROWS, SEL_N_COLS))
    X[:, 17] = 3.25  # exactly constant
    X[:, 23] = 1e8 + 1e-7 * rng.normal(size=SEL_N_ROWS)  # noise-floor constant
    X[:, 31] = X[:, 5]  # exact duplicate
    X[:, 37] = -2.0 * X[:, 11]  # negated scaled duplicate
    X[rng.random(SEL_N_ROWS) < 0.001, 41] = np.nan  # sparse missing values
    ivs = rng.uniform(0.05, 1.0, size=SEL_N_COLS)
    ivs[200:210] = ivs[199]  # IV ties break by column order
    ivs[41] = 0.01  # the NaN column is visited late (kept set non-empty)
    return X, ivs


def run_selection_benchmark(repeats: int = 2) -> dict:
    """Full-matrix seed greedy vs blocked incremental kernel, 50k x 3k.

    The seed side runs once (it is the expensive path being replaced);
    the blocked side takes best-of-``repeats``. Kept indices must be
    identical.
    """
    X, ivs = build_selection_workload()
    seed_s, seed_kept = best_of(
        lambda: seed_remove_redundant(X, ivs, SEL_THETA), 1
    )
    blocked_s, blocked_kept = best_of(
        lambda: remove_redundant_features_blocked(
            X, ivs, SEL_THETA, block_size=SEL_BLOCK_SIZE
        ),
        repeats,
    )
    return {
        "n_rows": SEL_N_ROWS,
        "n_candidates": SEL_N_COLS,
        "n_groups": SEL_N_GROUPS,
        "theta": SEL_THETA,
        "block_size": SEL_BLOCK_SIZE,
        "n_kept": int(blocked_kept.size),
        "seed_seconds": seed_s,
        "blocked_seconds": blocked_s,
        "speedup": seed_s / blocked_s,
        "kept_identical": bool(np.array_equal(seed_kept, blocked_kept)),
    }


def run_end_to_end_fit() -> dict:
    """One engine-path SAFE.fit, recorded for regression tracking."""
    from repro.core import SAFE, SAFEConfig
    from repro.tabular import Dataset

    rng = np.random.default_rng(SEED + 2)
    X = rng.normal(size=(FIT_N_ROWS, FIT_N_COLS))
    y = (X[:, 0] * X[:, 1] + 0.5 * X[:, 2] - 0.3 * X[:, 3] > 0).astype(float)
    train = Dataset.from_arrays(X[: FIT_N_ROWS // 2], y[: FIT_N_ROWS // 2])
    valid = Dataset.from_arrays(X[FIT_N_ROWS // 2 :], y[FIT_N_ROWS // 2 :])
    cfg = SAFEConfig(n_iterations=FIT_ITERATIONS, gamma=30, random_state=0)
    t0 = time.perf_counter()
    psi = SAFE(cfg).fit(train, valid)
    seconds = time.perf_counter() - t0
    return {
        "n_rows": FIT_N_ROWS // 2,
        "n_cols": FIT_N_COLS,
        "n_iterations": FIT_ITERATIONS,
        "seconds": seconds,
        "n_output_features": psi.n_output_features,
    }


def _write_fit_stream_workload(dirpath: str, n_rows: int) -> tuple[str, str]:
    """Materialize the memmap-backed workload on disk, chunk-at-a-time.

    The generating process itself stays out-of-core (1M-row blocks into
    ``open_memmap``) so the benchmark's measured peak reflects the fit,
    not a leftover generation buffer.
    """
    import os

    xp = os.path.join(dirpath, "X.npy")
    yp = os.path.join(dirpath, "y.npy")
    X = np.lib.format.open_memmap(
        xp, mode="w+", dtype=np.float64, shape=(n_rows, FS_N_COLS)
    )
    y = np.lib.format.open_memmap(yp, mode="w+", dtype=np.float64, shape=(n_rows,))
    rng = np.random.default_rng(SEED + 6)
    for lo in range(0, n_rows, 1_000_000):
        hi = min(lo + 1_000_000, n_rows)
        block = rng.normal(size=(hi - lo, FS_N_COLS))
        X[lo:hi] = block
        y[lo:hi] = (
            block[:, 0] - 0.5 * block[:, 1] + 0.5 * rng.normal(size=hi - lo) > 0
        ).astype(np.float64)
    X.flush()
    y.flush()
    del X, y
    return xp, yp


def run_fit_stream_benchmark() -> dict:
    """Out-of-core SAFE.fit on a 5M-row memmapped ChunkedDataset.

    Records rows/sec and the tracemalloc peak of the streaming fit
    (``sketch="merge"``), the ratio of the materialized-matrix bytes to
    that peak (the gate requires >= 8x), and an exact-sketch Ψ-parity
    sub-record at ``FS_PARITY_ROWS`` where the in-memory fit is still
    cheap enough to run: both paths must keep bit-identical expression
    keys.
    """
    import tempfile
    import tracemalloc

    from repro.core import SAFE, SAFEConfig
    from repro.tabular import Dataset
    from repro.tabular.io import ChunkedDataset

    names = tuple(f"f{i}" for i in range(FS_N_COLS))
    with tempfile.TemporaryDirectory() as td:
        xp, yp = _write_fit_stream_workload(td, FS_N_ROWS)
        cfg = SAFEConfig(n_iterations=1, sketch="merge", random_state=0)
        data = ChunkedDataset(names, FS_CHUNK_ROWS, x_path=xp, y_path=yp)
        tracemalloc.start()
        try:
            t0 = time.perf_counter()
            psi = SAFE(cfg).fit(data)
            stream_s = time.perf_counter() - t0
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()

        # Parity sub-record: exact sketch, streaming vs in-memory, on a
        # prefix slice small enough to materialize.
        parity_cfg = SAFEConfig(n_iterations=1, sketch="exact", random_state=0)
        parity_data = ChunkedDataset(
            names, FS_CHUNK_ROWS, x_path=xp, y_path=yp, stop=FS_PARITY_ROWS
        )
        stream_keys = [
            e.key for e in SAFE(parity_cfg).fit(parity_data).expressions
        ]
        mem_train = Dataset(
            X=np.asarray(np.load(xp, mmap_mode="r")[:FS_PARITY_ROWS]),
            y=np.asarray(np.load(yp, mmap_mode="r")[:FS_PARITY_ROWS]),
            names=names,
        )
        mem_keys = [e.key for e in SAFE(parity_cfg).fit(mem_train).expressions]

    matrix_bytes = FS_N_ROWS * FS_N_COLS * 8
    return {
        "n_rows": FS_N_ROWS,
        "n_cols": FS_N_COLS,
        "chunk_rows": FS_CHUNK_ROWS,
        "sketch": "merge",
        "seconds": stream_s,
        "rows_per_second": FS_N_ROWS / stream_s,
        "tracemalloc_peak_bytes": int(peak),
        "peak_ceiling_bytes": FS_PEAK_CEILING_BYTES,
        "matrix_bytes": matrix_bytes,
        "matrix_to_peak_ratio": matrix_bytes / peak,
        "n_output_features": len(psi.expressions),
        "parity": {
            "n_rows": FS_PARITY_ROWS,
            "sketch": "exact",
            "n_kept": len(stream_keys),
            "psi_identical": stream_keys == mem_keys,
        },
    }


def run_fit_recovery_benchmark() -> dict:
    """Crash-safe fit: resume-vs-refit wall time and manifest overhead.

    Three measured fits over the same ``FR_N_ROWS``-row chunked
    workload:

    1. a clean fit without a manifest — the refit cost a crash without
       checkpoints would pay;
    2. a clean fit with chunk-integrity verification on — its time over
       (1) is the manifest overhead (verification is digested once per
       chunk and cached, so a multi-iteration fit amortizes it);
    3. a fit killed by the ``pipeline.iteration`` failpoint after
       ``FR_ITERATIONS - 1`` of ``FR_ITERATIONS`` iterations have
       checkpointed, then resumed from the checkpoint directory — the
       resume replays the checkpointed plan and recomputes only the
       final iteration.

    The gate requires resume to be >= 3x faster than refit and the
    manifest overhead to stay within 10%.
    """
    import os
    import tempfile

    from repro.core import SAFE, SAFEConfig
    from repro.exceptions import InjectedFault
    from repro.runtime.failpoints import active
    from repro.tabular.io import ChunkedDataset, write_manifest

    with tempfile.TemporaryDirectory() as td:
        xp, yp = _write_fit_stream_workload(td, FR_N_ROWS)
        cfg = SAFEConfig(
            n_iterations=FR_ITERATIONS, sketch="merge", random_state=0
        )

        def data(manifest: bool) -> ChunkedDataset:
            return ChunkedDataset.from_npy(
                xp, y_path=yp, chunk_rows=FS_CHUNK_ROWS, manifest=manifest
            )

        t0 = time.perf_counter()
        psi = SAFE(cfg).fit(data(manifest=False))
        refit_s = time.perf_counter() - t0

        write_manifest(data(manifest=False))
        t0 = time.perf_counter()
        SAFE(cfg).fit(data(manifest=True))
        manifest_s = time.perf_counter() - t0

        ckpt = os.path.join(td, "ckpt")
        with active("pipeline.iteration", mode="nth", nth=FR_ITERATIONS - 1):
            try:
                SAFE(cfg).fit(data(manifest=False), checkpoint_dir=ckpt)
            except InjectedFault:
                pass
        t0 = time.perf_counter()
        resumed = SAFE(cfg)
        resumed_psi = resumed.fit(data(manifest=False), checkpoint_dir=ckpt)
        resume_s = time.perf_counter() - t0

    refit_keys = [e.key for e in psi.expressions]
    resumed_keys = [e.key for e in resumed_psi.expressions]
    return {
        "n_rows": FR_N_ROWS,
        "n_cols": FS_N_COLS,
        "chunk_rows": FS_CHUNK_ROWS,
        "n_iterations": FR_ITERATIONS,
        "refit_seconds": refit_s,
        "resume_seconds": resume_s,
        "resume_speedup": refit_s / resume_s,
        "manifest_seconds": manifest_s,
        "manifest_overhead": manifest_s / refit_s - 1.0,
        "resumed_from_iteration": resumed.runtime_report_.resumed_from_iteration,
        "psi_identical": resumed_keys == refit_keys,
        "n_output_features": len(refit_keys),
    }


def best_of(fn, repeats: int = 3) -> tuple[float, object]:
    best = float("inf")
    result = None
    for __ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_scoring_benchmark() -> dict:
    """Ranking + IV stages, scalar vs batched (the PR 1 workloads)."""
    X, y, combos = build_workload()

    scalar_rank_s, scalar_ratios = best_of(lambda: scalar_rank(X, y, combos), 1)
    batched_rank_s, batched_ratios = best_of(
        lambda: score_combinations(X, y, combos), 3
    )
    scalar_iv_s, scalar_ivs = best_of(lambda: scalar_safe_ivs(X, y, IV_BINS), 2)
    batched_iv_s, batched_ivs = best_of(
        lambda: information_values_matrix(X, y, n_bins=IV_BINS), 3
    )
    rank_err = float(np.abs(scalar_ratios - batched_ratios).max())
    iv_err = float(np.abs(scalar_ivs - batched_ivs).max())

    # gamma only truncates the sorted output; include it so the measured
    # stage is exactly what the pipeline runs.
    ranked = rank_combinations(X, y, combos, gamma=GAMMA)
    assert len(ranked) == GAMMA

    combined = (scalar_rank_s + scalar_iv_s) / (batched_rank_s + batched_iv_s)
    return {
        "workload": {
            "n_rows": N_ROWS,
            "n_cols": N_COLS,
            "gamma": GAMMA,
            "iv_bins": IV_BINS,
            "n_combinations": N_COMBOS,
            "seed": SEED,
        },
        "ranking": {
            "scalar_seconds": scalar_rank_s,
            "batched_seconds": batched_rank_s,
            "speedup": scalar_rank_s / batched_rank_s,
            "max_abs_diff": rank_err,
        },
        "information_value": {
            "scalar_seconds": scalar_iv_s,
            "batched_seconds": batched_iv_s,
            "speedup": scalar_iv_s / batched_iv_s,
            "max_abs_diff": iv_err,
        },
        "combined_speedup": combined,
    }


def run_generation_benchmark() -> dict:
    """Generation stage, scalar vs CSE engine (the PR 3 workload)."""
    X, __, combos = build_workload()
    # Same repeat count on both sides so the best-of comparison is fair.
    ranked_gen, base_exprs, X_valid = build_generation_workload(combos)
    scalar_gen_s, scalar_gen_out = best_of(
        lambda: scalar_generation_stage(ranked_gen, base_exprs, X, X_valid), 3
    )
    batched_gen_s, batched_gen_out = best_of(
        lambda: batched_generation_stage(ranked_gen, base_exprs, X, X_valid), 3
    )
    s_exprs, s_cand, s_valid = scalar_gen_out
    b_exprs, b_cand, b_valid = batched_gen_out
    generation_identical = (
        [e.key for e in s_exprs] == [e.key for e in b_exprs]
        and [e.state for e in s_exprs] == [e.state for e in b_exprs]
        and np.array_equal(s_cand, b_cand, equal_nan=True)
        and np.array_equal(s_valid, b_valid, equal_nan=True)
    )
    return {
        "generation": {
            "n_combinations": GAMMA,
            "n_valid_rows": N_VALID_ROWS,
            "operators": list(GENERATION_OPERATORS),
            "n_generated": len(b_exprs),
            "scalar_seconds": scalar_gen_s,
            "batched_seconds": batched_gen_s,
            "speedup": scalar_gen_s / batched_gen_s,
            "bit_identical": generation_identical,
        }
    }


#: Stage name -> callable returning the top-level keys that stage owns.
STAGE_RUNNERS = {
    "scoring": run_scoring_benchmark,
    "generation": run_generation_benchmark,
    "boosting": lambda: {"boosting": run_boosting_benchmark()},
    "end_to_end": lambda: {"end_to_end_fit": run_end_to_end_fit()},
    "selection": lambda: {"selection": run_selection_benchmark()},
    "fit_stream": lambda: {"fit_stream": run_fit_stream_benchmark()},
    "fit_recovery": lambda: {"fit_recovery": run_fit_recovery_benchmark()},
}
ALL_STAGES = tuple(STAGE_RUNNERS)


def _print_stage_summaries(report: dict) -> None:
    if "ranking" in report:
        r = report["ranking"]
        print(
            f"ranking: {r['scalar_seconds']:.3f}s -> {r['batched_seconds']:.3f}s "
            f"({r['speedup']:.1f}x)"
        )
    if "information_value" in report:
        r = report["information_value"]
        print(
            f"IV:      {r['scalar_seconds']:.3f}s -> {r['batched_seconds']:.3f}s "
            f"({r['speedup']:.1f}x)"
        )
    if "generation" in report:
        r = report["generation"]
        print(
            f"generation: {r['scalar_seconds']:.3f}s -> {r['batched_seconds']:.3f}s "
            f"({r['speedup']:.1f}x)  bit-identical: {r['bit_identical']}"
        )
    if "boosting" in report:
        r = report["boosting"]
        print(
            f"boosting: {r['seed_seconds']:.3f}s -> {r['fast_seconds']:.3f}s "
            f"({r['speedup']:.1f}x)  parity {r['parity']['speedup']:.1f}x "
            f"bit-identical: {r['parity']['train_margins_bit_identical']}"
        )
    if "selection" in report:
        r = report["selection"]
        print(
            f"selection: {r['seed_seconds']:.3f}s -> {r['blocked_seconds']:.3f}s "
            f"({r['speedup']:.1f}x)  kept {r['n_kept']}/{r['n_candidates']} "
            f"identical: {r['kept_identical']}"
        )
    if "end_to_end_fit" in report:
        print(f"end-to-end fit: {report['end_to_end_fit']['seconds']:.3f}s")
    if "fit_stream" in report:
        r = report["fit_stream"]
        print(
            f"fit_stream: {r['n_rows']:,} rows in {r['seconds']:.1f}s "
            f"({r['rows_per_second']:,.0f} rows/s)  "
            f"peak {r['tracemalloc_peak_bytes'] / 1e6:.1f}MB "
            f"({r['matrix_to_peak_ratio']:.1f}x under the matrix)  "
            f"psi identical: {r['parity']['psi_identical']}"
        )
    if "fit_recovery" in report:
        r = report["fit_recovery"]
        print(
            f"fit_recovery: refit {r['refit_seconds']:.1f}s vs resume "
            f"{r['resume_seconds']:.1f}s ({r['resume_speedup']:.1f}x)  "
            f"manifest overhead {r['manifest_overhead'] * 100:+.1f}%  "
            f"psi identical: {r['psi_identical']}"
        )
    if "combined_speedup" in report:
        print(
            f"combined: {report['combined_speedup']:.2f}x   "
            f"equivalent: {report.get('equivalent_within_1e-9')}"
        )


def main(write_json: bool = True, stages: "list[str] | None" = None) -> dict:
    """Run the requested stages (default: all) and merge into the report.

    When a subset of stages is requested and ``BENCH_perf.json`` exists,
    the untouched stages' records are carried over from it, so one
    workload can be re-timed without re-running the others.
    """
    requested = list(stages) if stages else list(ALL_STAGES)
    unknown = set(requested) - set(ALL_STAGES)
    if unknown:
        raise ValueError(f"unknown benchmark stage(s): {sorted(unknown)}")
    report: dict = {}
    if write_json and RESULT_PATH.exists() and set(requested) != set(ALL_STAGES):
        report = json.loads(RESULT_PATH.read_text())
    for stage in requested:
        report.update(STAGE_RUNNERS[stage]())
    if all(k in report for k in ("ranking", "information_value", "generation")):
        report["equivalent_within_1e-9"] = (
            report["ranking"]["max_abs_diff"] <= TOL
            and report["information_value"]["max_abs_diff"] <= TOL
            and report["generation"]["bit_identical"]
        )
    report["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    if write_json:
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    _print_stage_summaries(report)
    if write_json:
        print(f"wrote {RESULT_PATH}")
    return report


#: Per-stage pass criteria applied to the merged report by ``__main__``.
STAGE_GATES = {
    "scoring": lambda r: (
        r["combined_speedup"] >= 5.0
        and r["ranking"]["max_abs_diff"] <= TOL
        and r["information_value"]["max_abs_diff"] <= TOL
    ),
    "generation": lambda r: (
        r["generation"]["speedup"] >= 4.0 and r["generation"]["bit_identical"]
    ),
    "boosting": lambda r: (
        r["boosting"]["speedup"] >= 3.0
        and r["boosting"]["parity"]["train_margins_bit_identical"]
    ),
    "selection": lambda r: (
        r["selection"]["speedup"] >= 4.0 and r["selection"]["kept_identical"]
    ),
    "end_to_end": lambda r: r["end_to_end_fit"]["n_output_features"] >= 1,
    "fit_stream": lambda r: (
        r["fit_stream"]["tracemalloc_peak_bytes"]
        < r["fit_stream"]["peak_ceiling_bytes"]
        and r["fit_stream"]["matrix_to_peak_ratio"] >= 8.0
        and r["fit_stream"]["parity"]["psi_identical"]
        and r["fit_stream"]["n_output_features"] >= 1
    ),
    "fit_recovery": lambda r: (
        r["fit_recovery"]["resume_speedup"] >= 3.0
        and r["fit_recovery"]["manifest_overhead"] <= 0.10
        and r["fit_recovery"]["psi_identical"]
    ),
}


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--stage",
        action="append",
        choices=ALL_STAGES,
        help="re-run only this workload and merge it into BENCH_perf.json "
        "(repeatable; default: all stages)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the report without touching BENCH_perf.json",
    )
    cli = parser.parse_args()
    ran = list(cli.stage) if cli.stage else list(ALL_STAGES)
    report = main(write_json=not cli.no_write, stages=ran)
    sys.exit(0 if all(STAGE_GATES[s](report) for s in ran) else 1)
