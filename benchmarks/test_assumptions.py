"""Benchmark E7 — the §IV-B assumption verification.

Paper finding reproduced: features generated from same-path split-feature
pairs carry more information value than features from pairs involving
non-split features; split features beat non-split features for unary
generation.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import assumptions


def test_assumptions_hold_on_wide_data(benchmark, bench_seed):
    result = benchmark.pedantic(
        assumptions.run,
        kwargs=dict(
            datasets=("valley", "spambase"),
            scale=0.15,
            max_pairs=25,
            seed=bench_seed,
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )
    for ds in ("valley", "spambase"):
        row = result.mean_ivs[ds]
        # Assumption 1: unary — split features more informative.
        if not np.isnan(row["unary_non_split"]):
            assert row["unary_split"] >= row["unary_non_split"], ds
        # Assumption 2: binary — same-path pairs at least as informative
        # as non-split pairs.
        if not np.isnan(row["non_split"]):
            assert row["same_path"] >= row["non_split"], ds
        assert result.holds[ds]["assumption_1"], ds
        assert result.holds[ds]["assumption_2"], ds
