"""Shared settings for the paper-reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper at reduced scale
(sample counts scaled, repeat counts reduced) and asserts the paper's
*qualitative* finding on the result. Timings come from pytest-benchmark;
run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

#: Scale applied to Table IV / Table VII sample counts inside benchmarks.
BENCH_SCALE = 0.1
BENCH_GAMMA = 30
BENCH_SEED = 0


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_gamma() -> int:
    return BENCH_GAMMA


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED
