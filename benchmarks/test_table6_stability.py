"""Benchmark E4 — regenerates Table VI (feature stability).

Paper finding reproduced: SAFE's generated feature set is more stable
across repeated runs (lower JSD against the ideal distribution) than the
purely random RAND baseline; all scores live in [0, ln 2].
"""

from __future__ import annotations

import numpy as np

from repro.experiments import table6


def test_table6_stability(benchmark, bench_gamma, bench_seed):
    result = benchmark.pedantic(
        table6.run,
        kwargs=dict(
            datasets=("magic",),
            methods=("RAND", "IMP", "SAFE"),
            repeats=5,
            scale=0.1,
            gamma=bench_gamma,
            seed=bench_seed,
            verbose=False,
        ),
        rounds=1,
        iterations=1,
    )
    row = result.jsd["magic"]
    for method, score in row.items():
        assert 0.0 <= score <= np.log(2) + 1e-9, f"{method} JSD out of range"
    # SAFE's mining-guided choices recur across runs more than RAND's
    # uniformly random pairs (small tolerance for the reduced repeat count).
    assert row["SAFE"] <= row["RAND"] + 0.05, (
        f"SAFE JSD {row['SAFE']:.4f} should not exceed RAND {row['RAND']:.4f}"
    )
