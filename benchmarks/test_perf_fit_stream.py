"""Perf gate for the out-of-core streaming fit (not tier-1).

Run explicitly with ``PYTHONPATH=src python -m pytest -m perf
benchmarks/test_perf_fit_stream.py``. Asserts the acceptance criteria of
the sharded-fit PR at full scale: ``SAFE.fit`` on a 5M-row memmapped
``ChunkedDataset`` completes with a tracemalloc peak bounded by
O(chunk + kept state) — under the fixed ceiling of one eighth of the
materialized matrix, i.e. holding the rows in memory would cost >= 8x
the streaming peak — and the exact-sketch streaming fit keeps a Ψ
bit-identical to the in-memory fit on the same rows.

The fast tier-1 twin of the memory gate (80k rows, direct in-memory
comparison) is ``tests/test_core_stream.py::TestMemoryGate``.
"""

from __future__ import annotations

import pytest

import run_perf

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def record():
    return run_perf.run_fit_stream_benchmark()


def test_workload_is_at_acceptance_scale(record):
    assert record["n_rows"] >= 5_000_000
    assert record["sketch"] == "merge"
    assert record["n_output_features"] >= 1


def test_peak_memory_is_out_of_core(record):
    assert record["tracemalloc_peak_bytes"] < record["peak_ceiling_bytes"]
    assert record["matrix_to_peak_ratio"] >= 8.0


def test_exact_sketch_psi_is_bit_identical(record):
    assert record["parity"]["n_rows"] >= 100_000
    assert record["parity"]["psi_identical"] is True
    assert record["parity"]["n_kept"] >= 1


@pytest.fixture(scope="module")
def recovery():
    return run_perf.run_fit_recovery_benchmark()


def test_resume_is_at_least_3x_faster_than_refit(recovery):
    assert recovery["resumed_from_iteration"] is not None
    assert recovery["resume_speedup"] >= 3.0


def test_manifest_verification_overhead_within_10_percent(recovery):
    assert recovery["manifest_overhead"] <= 0.10


def test_resumed_psi_matches_refit(recovery):
    assert recovery["psi_identical"] is True
    assert recovery["n_output_features"] >= 1
